"""Unit tests for simulator channels."""

import pytest

from repro.sim import Simulator, Timeout, Channel, ChannelClosed, SimError


def test_put_then_get():
    sim = Simulator()
    chan = Channel(sim)
    out = []

    def consumer():
        out.append((yield chan.get()))

    chan.put("x")
    sim.spawn(consumer())
    sim.run()
    assert out == ["x"]


def test_get_blocks_until_put():
    sim = Simulator()
    chan = Channel(sim)
    out = []

    def consumer():
        out.append(((yield chan.get()), sim.now))

    def producer():
        yield Timeout(3.0)
        chan.put(99)

    sim.spawn(consumer())
    sim.spawn(producer())
    sim.run()
    assert out == [(99, 3.0)]


def test_fifo_ordering_of_items():
    sim = Simulator()
    chan = Channel(sim)
    out = []

    def consumer():
        for _ in range(3):
            out.append((yield chan.get()))

    for i in range(3):
        chan.put(i)
    sim.spawn(consumer())
    sim.run()
    assert out == [0, 1, 2]


def test_fifo_ordering_of_getters():
    sim = Simulator()
    chan = Channel(sim)
    out = []

    def consumer(tag):
        out.append((tag, (yield chan.get())))

    sim.spawn(consumer("a"))
    sim.spawn(consumer("b"))

    def producer():
        yield Timeout(1.0)
        chan.put(1)
        chan.put(2)

    sim.spawn(producer())
    sim.run()
    assert out == [("a", 1), ("b", 2)]


def test_capacity_drop():
    sim = Simulator()
    chan = Channel(sim, capacity=2)
    assert chan.put(1)
    assert chan.put(2)
    assert not chan.put(3)  # dropped
    assert len(chan) == 2


def test_capacity_with_waiting_getter_bypasses_queue():
    sim = Simulator()
    chan = Channel(sim, capacity=0)
    out = []

    def consumer():
        out.append((yield chan.get()))

    sim.spawn(consumer())

    def producer():
        yield Timeout(1.0)
        assert chan.put("direct")  # delivered straight to the getter

    sim.spawn(producer())
    sim.run()
    assert out == ["direct"]


def test_try_get():
    sim = Simulator()
    chan = Channel(sim)
    assert chan.try_get() == (False, None)
    chan.put(7)
    assert chan.try_get() == (True, 7)
    assert chan.try_get() == (False, None)


def test_close_wakes_blocked_getters():
    sim = Simulator()
    chan = Channel(sim)
    out = []

    def consumer():
        try:
            yield chan.get()
        except ChannelClosed:
            out.append("closed")

    sim.spawn(consumer())

    def closer():
        yield Timeout(1.0)
        chan.close()

    sim.spawn(closer())
    sim.run()
    assert out == ["closed"]


def test_get_after_close_drains_then_raises():
    sim = Simulator()
    chan = Channel(sim)
    chan.put("leftover")
    chan.close()
    out = []

    def consumer():
        out.append((yield chan.get()))
        try:
            yield chan.get()
        except ChannelClosed:
            out.append("closed")

    sim.spawn(consumer())
    sim.run()
    assert out == ["leftover", "closed"]


def test_put_on_closed_channel_raises():
    sim = Simulator()
    chan = Channel(sim)
    chan.close()
    with pytest.raises(SimError):
        chan.put(1)
