"""Per-partition cProfile collection under the partitioned (PDES) driver.

``repro profile --pdes-workers K`` used to profile only the coordinator: the
forked partition workers' CPU time vanished from the printout.  Now each
worker runs under its own ``cProfile.Profile`` (opt-in via
``run_partitioned(..., profile=True)``), ships the picklable ``prof.stats``
dict back over the result pipe, and the CLI merges coordinator + partition
stats into one ``pstats`` table.  The claims:

* fork mode returns one stats dict per partition, and those dicts contain
  partition-side frames (functions executed only inside the worker);
* inline mode returns ``profiles=None`` — the parent's profiler already
  observes everything, a second layer would double-count;
* profiling is an observer: simulated results stay bit-identical;
* the CLI merge path works end to end.
"""

import hashlib
import json
import pstats
import sys

from repro.apps import APPS
from repro.sim.pdes import run_partitioned


def _fingerprint(outcome) -> str:
    return hashlib.sha256(
        json.dumps(outcome.output, sort_keys=True, default=repr).encode()
    ).hexdigest()


def test_fork_profile_collects_partition_frames():
    plain = run_partitioned(
        APPS["is"], protocol="vc_sd", nprocs=8, workers=2, mode="fork"
    )
    profiled = run_partitioned(
        APPS["is"], protocol="vc_sd", nprocs=8, workers=2, mode="fork",
        profile=True,
    )
    assert profiled.profiles is not None
    assert sorted(profiled.profiles) == [0, 1]
    for stats_dict in profiled.profiles.values():
        # partition-side work must show up: frames from pdes.py functions
        # that only execute inside the worker process
        assert any(
            key[0].endswith("pdes.py") for key in stats_dict
        ), "no partition-side pdes.py frames in the shipped profile"

    # profiling never perturbs the simulated run
    assert profiled.time == plain.time
    assert _fingerprint(profiled) == _fingerprint(plain)


def test_inline_profile_returns_none():
    outcome = run_partitioned(
        APPS["is"], protocol="vc_sd", nprocs=8, workers=2, mode="inline",
        profile=True,
    )
    # inline partitions run in-process: the caller's own profiler sees them
    assert outcome.profiles is None


def test_partition_stats_merge_into_pstats():
    outcome = run_partitioned(
        APPS["is"], protocol="vc_sd", nprocs=8, workers=2, mode="fork",
        profile=True,
    )
    from repro.cli import _StatsCarrier

    stats = pstats.Stats(_StatsCarrier(outcome.profiles[0]))
    before = stats.total_calls
    stats.add(_StatsCarrier(outcome.profiles[1]))
    assert stats.total_calls > before


def test_cli_profile_pdes_workers(capsys):
    from repro.cli import main

    code = main([
        "profile", "is", "--protocol", "vc_sd", "--nprocs", "8",
        "--pdes-workers", "2", "--top", "5",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "2 PDES partitions" in out
    assert "partition profiles merged" in out
    # the merged table must include worker-side frames: posix pipe reads
    # happen in both parent and children, but _worker_main is child-only
    assert "pdes.py" in out or "function calls" in out


def test_cli_profile_serial_still_works(capsys):
    from repro.cli import main

    code = main([
        "profile", "is", "--protocol", "vc_sd", "--nprocs", "4", "--top", "5",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "simulated seconds" in out
