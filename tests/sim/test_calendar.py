"""Calendar/bucket queue: exact order parity with the binary heap.

The PDES partitions run on calendar-queue simulators while the serial
reference runs on the heap, so any ordering divergence between the two data
structures would break the bit-identity gate.  These tests pin pop order to
``heapq`` on randomized schedules and on the degenerate shapes that
historically break calendar queues.
"""

import heapq
import random

import pytest

from repro.sim import Simulator, Timeout
from repro.sim.calendar import CalendarQueue


def _entry(t, seq):
    # the engine's (t, tsched, cls, seq, fn, args) shape, fn/args inert
    return (t, 0.0, 0, seq, None, ())


def _drain_matches_heap(entries, interleave=None, rng=None):
    """Push/pop ``entries`` through both structures, comparing every pop."""
    cq = CalendarQueue()
    ref = []
    seq = 0
    i = 0
    entries = list(entries)
    while i < len(entries) or ref:
        push = i < len(entries) and (
            not ref or rng is None or rng.random() < 0.6
        )
        if push:
            e = _entry(entries[i], seq)
            seq += 1
            i += 1
            cq.push(e)
            heapq.heappush(ref, e)
        else:
            assert len(cq) == len(ref)
            assert cq[0] == ref[0]  # peek parity
            assert cq.pop() == heapq.heappop(ref)
    assert len(cq) == 0


def test_randomized_schedules_match_heap_order():
    rng = random.Random(20050831)
    for trial in range(20):
        n = rng.randint(1, 400)
        scale = rng.choice([1e-6, 1e-3, 1.0, 1e3])
        times = [rng.random() * scale for _ in range(n)]
        _drain_matches_heap(times, rng=rng)


def test_interleaved_push_pop_matches_heap_order():
    rng = random.Random(7)
    # monotone-ish times as the engine produces them: now + small delay
    now = 0.0
    times = []
    for _ in range(500):
        now += rng.random() * 1e-4
        times.append(now + rng.choice([0.0, 2e-5, 6e-5, 1e-2]))
    _drain_matches_heap(times, rng=rng)


# -- degenerate shapes ------------------------------------------------------------


def test_all_zero_delays_single_instant():
    _drain_matches_heap([0.0] * 300)


def test_single_far_future_outlier_among_dense_events():
    times = [i * 1e-5 for i in range(200)] + [3.1e7]  # ~1 simulated year out
    _drain_matches_heap(times)


def test_events_exactly_on_bucket_width_boundaries():
    cq = CalendarQueue(nbuckets=8, width=1e-5)
    w = 1e-5
    times = [k * w for k in range(40)] + [k * w for k in range(0, 40, 8)]
    _drain_matches_heap(times)


def test_ties_break_by_full_key_not_bucket_position():
    cq = CalendarQueue()
    ref = []
    for seq in (5, 3, 9, 0, 7):
        e = _entry(1.25e-4, seq)
        cq.push(e)
        heapq.heappush(ref, e)
    got = [cq.pop()[3] for _ in range(5)]
    assert got == [0, 3, 5, 7, 9]
    assert [heapq.heappop(ref)[3] for _ in range(5)] == got


def test_growth_and_shrink_through_resizes():
    rng = random.Random(99)
    cq = CalendarQueue()
    ref = []
    for seq in range(3000):
        e = _entry(rng.random() * rng.choice([1e-5, 1e-2, 10.0]), seq)
        cq.push(e)
        heapq.heappush(ref, e)
    # shrink all the way back down, checking order the whole way
    while ref:
        assert cq.pop() == heapq.heappop(ref)
    assert not cq
    with pytest.raises(IndexError):
        cq.pop()


# -- the engine on a calendar queue ----------------------------------------------


def test_simulator_behaves_identically_on_calendar_queue():
    """The same workload on heap and calendar simulators must produce the
    same trace, clock, and event count."""

    def run(queue):
        sim = Simulator(queue=queue)
        trace = []

        def worker(tag, period):
            for _ in range(40):
                yield Timeout(period)
                trace.append((tag, sim.now))

        for tag, period in enumerate([1e-5, 2.5e-5, 1e-4, 7e-3, 1.0]):
            sim.spawn(worker(tag, period))
        sim.run()
        return trace, sim.now, sim.events_processed

    assert run("calendar") == run("heap")


def test_simulator_calendar_windows_match_heap_windows():
    def run(queue):
        sim = Simulator(queue=queue)
        trace = []

        def worker(tag, period):
            for _ in range(25):
                yield Timeout(period)
                trace.append((tag, sim.now))

        for tag, period in enumerate([2e-5, 3e-5, 5e-4]):
            sim.spawn(worker(tag, period))
        w = 0.0
        while sim.peek_next_time() != float("inf"):
            w = max(w + 2e-5, sim.now)
            sim.run(until=w, inclusive=False)
        return trace, sim.events_processed

    assert run("calendar") == run("heap")


def test_calendar_iter_yields_every_pending_entry():
    """__iter__ (the PDES horizon scan's view) sees head + all buckets."""
    cq = CalendarQueue()
    entries = [_entry(t, i) for i, t in enumerate(
        [5e-3, 1e-6, 2.0, 1e-6, 0.25, 7e-5])]
    for e in entries:
        cq.push(e)
    assert sorted(iter(cq)) == sorted(entries)
    popped = cq.pop()
    assert sorted(iter(cq)) == sorted(e for e in entries if e != popped)
    # iteration is inspection-only: pop order is undisturbed
    rest = [cq.pop() for _ in range(len(cq))]
    assert [popped] + rest == sorted(entries)


def test_auto_queue_migrates_at_threshold_with_identical_order():
    """queue="auto" flips heap→calendar at run() entry past the threshold,
    and the trace is bit-identical to a pure heap run."""

    def run(queue, threshold=None):
        sim = Simulator(queue=queue)
        if threshold is not None:
            sim.AUTO_CALENDAR_THRESHOLD = threshold
        trace = []

        def worker(tag, period):
            for _ in range(30):
                yield Timeout(period)
                trace.append((tag, sim.now))

        for tag, period in enumerate([1e-5, 2.5e-5, 1e-4, 7e-3]):
            sim.spawn(worker(tag, period))
        # two run() calls: the heap only populates once the start-ups have
        # executed, and auto migration happens at run() entry
        sim.run(until=2e-5, inclusive=False)
        sim.run()
        return trace, sim.now, sim.events_processed, sim.queue_active

    heap_trace = run("heap")
    auto_low = run("auto", threshold=2)
    auto_high = run("auto", threshold=1_000_000)
    assert auto_low[3] == "calendar"  # migrated
    assert auto_high[3] == "heap"  # stayed put
    assert auto_low[:3] == heap_trace[:3]
    assert auto_high[:3] == heap_trace[:3]
