"""Property tests for the batched window protocol (leases + elision).

The fast path must be *invisible*: batched and unbatched runs of the same
program produce bit-identical observables, and a lease can never extend a
partition's window past the earliest instant a frame could cross into it.
These tests exercise randomized cells, the observer-visible lease-safety
invariant, and the barrier-reduction counters the benchmark commits.
"""

import hashlib
import json
import math
import random

import pytest

from repro.apps import APPS
from repro.apps.common import run_app
from repro.bench.pdes import HaloConfig, _serial_halo, halo_app
from repro.sim.pdes import run_partitioned


def _fingerprint(result) -> str:
    return hashlib.sha256(
        json.dumps(result.table_row(), sort_keys=True).encode()
    ).hexdigest()


# -- batched vs unbatched bit-identity --------------------------------------------


def _random_cells(seed: int, count: int) -> list:
    """Seeded random draws over the conformance-relevant space."""
    rng = random.Random(seed)
    apps = ["is", "gauss", "sor", "nn"]
    protocols = ["lrc_d", "vc_d", "vc_sd", "mpi"]
    cells = []
    while len(cells) < count:
        app = rng.choice(apps)
        protocol = rng.choice(protocols)
        if protocol == "mpi" and app != "nn":  # only nn has an MPI build
            protocol = "vc_d"
        cell = (app, protocol, rng.choice([2, 3, 4]))
        if cell not in cells:
            cells.append(cell)
    return cells


@pytest.mark.parametrize("app,protocol,workers", _random_cells(seed=20260809, count=4))
def test_batched_matches_unbatched_bit_identical(app, protocol, workers):
    serial = run_app(APPS[app], protocol, 8)
    batched = run_app(
        APPS[app], protocol, 8,
        pdes_workers=workers, pdes_mode="inline", pdes_batching=True,
    )
    unbatched = run_app(
        APPS[app], protocol, 8,
        pdes_workers=workers, pdes_mode="inline", pdes_batching=False,
    )
    for run in (batched, unbatched):
        assert run.verified
        assert _fingerprint(run) == _fingerprint(serial)
        assert run.time == serial.time
        assert run.events == serial.events + (workers - 1) * 8


def test_unbatched_loop_reports_no_leases():
    result = run_app(
        APPS["is"], "lrc_d", 8,
        pdes_workers=2, pdes_mode="inline", pdes_batching=False,
    )
    assert result.pdes["elided_windows"] == 0
    assert result.pdes["leased_windows"] == 0


# -- lease safety -----------------------------------------------------------------


def test_lease_never_outruns_earliest_cross_partition_arrival():
    """Every frame injected at a barrier arrives at or beyond that barrier.

    The observer sees each round's ``T`` (the previous round's window end)
    and the arrival times of the frames uploaded at that barrier.  If a
    lease ever ran a partition past a time at which a foreign frame should
    have arrived, some arrival would land *before* the barrier — the
    partition would already have simulated past it, breaking causality.
    """
    rounds = []
    config = HaloConfig(steps=4)
    outcome = run_partitioned(
        halo_app, protocol="mpi", nprocs=16, config=config,
        workers=4, mode="inline", observer=rounds.append,
    )
    assert rounds, "observer saw no rounds"
    injected = 0
    prev_end = 0.0
    for r in rounds:
        # the partitions have simulated through the previous window end; a
        # frame arriving before it would land in their past
        assert r["T"] >= prev_end
        for t_arr in r["arrivals"]:
            assert t_arr >= prev_end
            injected += 1
        assert r["window_end"] > r["T"]
        prev_end = r["window_end"]
    assert injected > 0, "halo ring produced no cross-partition frames"
    # the run itself must still be bit-identical to serial
    output, sim_time, _, _ = _serial_halo(16, config)
    assert outcome.output == output and outcome.time == sim_time


def test_terminal_lease_reaches_infinity_only_after_last_influence():
    """If any round's window end is inf, it must be the final round."""
    rounds = []
    run_partitioned(
        halo_app, protocol="mpi", nprocs=16, config=HaloConfig(steps=2),
        workers=2, mode="inline", observer=rounds.append,
    )
    infinite = [i for i, r in enumerate(rounds) if r["window_end"] == math.inf]
    assert len(infinite) <= 1
    if infinite:
        assert infinite[0] == len(rounds) - 1


# -- barrier reduction ------------------------------------------------------------


def test_batching_cuts_barriers_at_least_2x_on_halo_ring():
    config = HaloConfig(steps=4)
    batched = run_partitioned(
        halo_app, protocol="mpi", nprocs=32, config=config,
        workers=2, mode="inline", batching=True,
    )
    unbatched = run_partitioned(
        halo_app, protocol="mpi", nprocs=32, config=config,
        workers=2, mode="inline", batching=False,
    )
    assert batched.output == unbatched.output
    assert batched.time == unbatched.time
    assert batched.events == unbatched.events
    assert batched.windows * 2 <= unbatched.windows
    assert batched.elided_windows + batched.leased_windows > 0
    assert batched.frame_bytes > 0
    assert batched.frame_bytes == unbatched.frame_bytes
