"""Conformance and unit tests for the partitioned (PDES) driver.

The load-bearing claim of :mod:`repro.sim.pdes` is *bit-identity*: a
partitioned run produces exactly the serial run's observables — output,
statistics row (and therefore the benchmark fingerprint), simulated time.
The tests here check that claim on real application cells (inline mode, so
failures give ordinary tracebacks) plus one fork-mode smoke, the refusal
surface, and the halo-ring MPI app the scaling benchmark uses.
"""

import hashlib
import json

import pytest

from repro.apps import APPS
from repro.apps.common import run_app
from repro.bench.pdes import HaloConfig, _serial_halo, halo_app
from repro.sim.pdes import PdesError, partition_ranks, run_partitioned


def _fingerprint(result) -> str:
    return hashlib.sha256(
        json.dumps(result.table_row(), sort_keys=True).encode()
    ).hexdigest()


# -- partitioning ----------------------------------------------------------------


def test_partition_ranks_cover_contiguously():
    for nprocs in (1, 2, 7, 8, 16):
        for workers in (1, 2, 3, 8, 32):
            parts = partition_ranks(nprocs, workers)
            flat = [r for block in parts for r in block]
            assert flat == list(range(nprocs))
            assert all(len(block) > 0 for block in parts)
            assert len(parts) == min(workers, nprocs)
            assert 0 in parts[0]  # rank 0 (output owner) lives in partition 0


def test_partition_ranks_rejects_zero_workers():
    with pytest.raises(PdesError):
        partition_ranks(8, 0)


# -- bit-identity on application cells --------------------------------------------


@pytest.mark.parametrize(
    "app,protocol,workers",
    [
        ("is", "lrc_d", 2),
        ("is", "vc_sd", 3),
        ("nn", "mpi", 4),
    ],
)
def test_inline_conformance_bit_identical(app, protocol, workers):
    serial = run_app(APPS[app], protocol, 8)
    pdes = run_app(
        APPS[app], protocol, 8, pdes_workers=workers, pdes_mode="inline"
    )
    assert pdes.verified
    assert _fingerprint(pdes) == _fingerprint(serial)
    assert pdes.time == serial.time
    # the only event-count delta is the foreign replicas' dispatcher
    # start-ups: one per non-owned node in each partition
    assert pdes.events == serial.events + (workers - 1) * 8


def test_fork_mode_bit_identical():
    serial = run_app(APPS["is"], "lrc_d", 8)
    pdes = run_app(
        APPS["is"], "lrc_d", 8, pdes_workers=2, pdes_mode="fork"
    )
    assert pdes.verified
    assert _fingerprint(pdes) == _fingerprint(serial)
    assert pdes.time == serial.time


def test_traced_pdes_matches_serial_breakdown():
    """The merged per-partition trace must attribute time exactly like the
    serial trace (per-(pid, lane) streams are identical) and export a
    schema-valid Chrome trace."""
    from repro.obs import EventTracer, chrome_trace, validate_chrome_trace

    t_serial, t_pdes = EventTracer(), EventTracer()
    serial = run_app(APPS["is"], "lrc_d", 8, tracer=t_serial)
    pdes = run_app(
        APPS["is"], "lrc_d", 8, tracer=t_pdes,
        pdes_workers=2, pdes_mode="inline",
    )
    assert pdes.breakdown == serial.breakdown
    validate_chrome_trace(chrome_trace(t_pdes))


# -- the halo-ring scaling app -----------------------------------------------------


def test_halo_ring_partitions_match_serial():
    config = HaloConfig(steps=3, halo_words=16, compute_seconds=100e-6)
    output, sim_time, events, _ = _serial_halo(8, config)
    outcome = run_partitioned(
        halo_app, protocol="mpi", nprocs=8, config=config,
        workers=16, mode="inline",  # clamps to 8 single-rank partitions
    )
    assert outcome.workers == 8
    assert outcome.output == output
    assert outcome.time == sim_time
    assert outcome.windows > 0


# -- refusal surface --------------------------------------------------------------


def test_refuses_hlrc_d():
    with pytest.raises(PdesError, match="hlrc_d"):
        run_partitioned(APPS["is"], protocol="hlrc_d", nprocs=8)


def test_refuses_faults_and_mpi_view_trace():
    # note: contention metrics, the consistency oracle AND the view tracer
    # are *supported* under PDES (per-partition shards merged in serial
    # order); see tests/sim/test_pdes_observers.py.  View tracing still
    # refuses mpi, which has no views to trace.
    with pytest.raises(PdesError, match="fault"):
        run_partitioned(APPS["is"], protocol="lrc_d", nprocs=8, faults=object())
    with pytest.raises(PdesError, match="[Vv]iew"):
        run_partitioned(
            APPS["nn"], protocol="mpi", nprocs=8, view_trace=True
        )


def test_refuses_random_drop_and_bad_mode():
    from repro.net.config import NetConfig

    with pytest.raises(PdesError, match="drop"):
        run_partitioned(
            APPS["is"], protocol="lrc_d", nprocs=8,
            netcfg=NetConfig(random_drop_prob=0.01),
        )
    with pytest.raises(PdesError, match="mode"):
        run_partitioned(APPS["is"], protocol="lrc_d", nprocs=8, mode="threads")


# -- sweep-cache integration -------------------------------------------------------


def test_cell_key_separates_pdes_entries():
    from repro.bench.sweep import SweepCell, cell_key

    cell = SweepCell(app="is", protocol="lrc_d", nprocs=8)
    base = cell_key(cell, "fp")
    assert cell_key(cell, "fp", pdes_workers=2) != base
    assert cell_key(cell, "fp", pdes_workers=4) != cell_key(cell, "fp", pdes_workers=2)
    # "not partitioned" spellings all recall the same serial entry
    assert cell_key(cell, "fp", pdes_workers=None) == base
    assert cell_key(cell, "fp", pdes_workers=1) == base
