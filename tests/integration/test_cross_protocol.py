"""Cross-cutting integration tests: determinism, loss injection, protocol
equivalence on whole applications."""

import numpy as np
import pytest

from repro.apps import gauss, is_sort, nn, sor
from repro.apps.common import run_app
from repro.net.config import NetConfig

IS_SMALL = is_sort.IsConfig(n_keys=1500, b_max=64, reps=3, bucket_views=4, work_factor=1.0)
SOR_SMALL = sor.SorConfig(rows=24, cols=16, iterations=2, work_factor=1.0)


def test_runs_are_bit_deterministic():
    """Two identical runs produce identical statistics AND timing."""

    def once():
        r = run_app(is_sort, "lrc_d", 6, IS_SMALL)
        return (r.time, r.stats.table_row(), tuple(r.output["ranks"]))

    assert once() == once()


@pytest.mark.parametrize("protocol", ["vc_d", "vc_sd"])
def test_runstats_identical_for_same_seed(protocol):
    """The full RunStats row — the perf-harness fingerprint — is replayable."""

    def row():
        r = run_app(is_sort, protocol, 6, IS_SMALL)
        return (r.stats.table_row(), r.events)

    assert row() == row()


def test_determinism_across_protocols_output_only():
    """All protocols compute the same (correct) answer."""
    outs = {
        proto: run_app(is_sort, proto, 4, IS_SMALL).output for proto in ("lrc_d", "vc_d", "vc_sd")
    }
    ref = is_sort.sequential(IS_SMALL)
    for proto, out in outs.items():
        assert np.array_equal(out["ranks"], ref["ranks"]), proto


@pytest.mark.parametrize("protocol", ["lrc_d", "vc_d", "vc_sd"])
def test_correct_under_injected_random_loss(protocol):
    """With seeded 2% uniform loss, reliable transport hides every drop and
    the application result stays bit-correct."""
    netcfg = NetConfig(random_drop_prob=0.02, drop_seed=99, rexmit_timeout=0.1)
    result = run_app(is_sort, protocol, 4, IS_SMALL, netcfg=netcfg)
    assert result.verified
    assert result.stats.net.drops > 0  # the loss actually happened
    assert result.stats.net.rexmit > 0


def test_correct_under_heavy_loss():
    netcfg = NetConfig(random_drop_prob=0.15, drop_seed=5, rexmit_timeout=0.05)
    result = run_app(sor, "vc_sd", 3, SOR_SMALL, netcfg=netcfg)
    assert result.verified


def test_loss_seed_changes_timing_but_not_output():
    base = None
    for seed in (1, 2):
        netcfg = NetConfig(random_drop_prob=0.05, drop_seed=seed, rexmit_timeout=0.1)
        r = run_app(is_sort, "vc_sd", 4, IS_SMALL, netcfg=netcfg)
        assert r.verified
        if base is None:
            base = r.output
        else:
            assert np.array_equal(r.output["ranks"], base["ranks"])


def test_manager_offset_preserves_correctness():
    """Remote view managers change traffic, never results."""
    from repro.core.program import VoppSystem

    for offset in (0, 1, 3):
        system = VoppSystem(4, protocol="vc_sd", manager_offset=offset)
        body = is_sort.build(system, IS_SMALL)
        system.run_program(body)
        out = is_sort.extract(system, IS_SMALL)
        assert is_sort.outputs_match(out, is_sort.sequential(IS_SMALL))


def test_gauss_no_local_buffers_variant_correct():
    cfg = gauss.GaussConfig(n=20, work_factor=1.0)
    result = run_app(gauss, "vc_sd", 3, cfg, variant="no_local_buffers")
    assert result.verified


def test_nn_no_rview_variant_correct():
    cfg = nn.NnConfig(n_samples=48, epochs=3, d_hidden=6, work_factor=1.0)
    result = run_app(nn, "vc_sd", 3, cfg, variant="no_rview")
    assert result.verified


def test_all_apps_at_odd_processor_counts():
    """Nothing assumes power-of-two clusters."""
    assert run_app(is_sort, "vc_sd", 5, IS_SMALL).verified
    assert run_app(sor, "vc_sd", 5, SOR_SMALL).verified
    assert run_app(gauss, "vc_sd", 5, gauss.GaussConfig(n=16, work_factor=1.0)).verified


def test_two_sequential_programs_on_one_system():
    """A system can run several program phases back to back."""
    from repro.core import VoppSystem

    system = VoppSystem(3)
    arr = system.alloc_array("a", 3, dtype="int64", page_aligned=True)

    def phase1(rt):
        if rt.rank == 0:
            yield from rt.acquire_view(0)
            yield from arr.write(rt, 0, [1, 2, 3])
            yield from rt.release_view(0)
        yield from rt.barrier()

    def phase2(rt):
        yield from rt.acquire_Rview(0)
        out = yield from arr.read(rt)
        yield from rt.release_Rview(0)
        yield from rt.barrier()
        return list(out)

    system.run_program(phase1)
    results = system.run_program(phase2)
    assert results == [[1, 2, 3]] * 3
