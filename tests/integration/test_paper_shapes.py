"""Fast shape-regression guards for the paper's headline findings.

The full reproductions live in ``benchmarks/``; these scaled-down versions
run inside the normal test suite so a refactor that silently destroys a
paper-critical behaviour fails ``pytest tests/`` immediately.
"""

import pytest

from repro.apps import gauss, is_sort, nn, sor
from repro.apps.common import run_app

NPROCS = 8

IS_CFG = is_sort.IsConfig(n_keys=1 << 12, b_max=256, reps=6, bucket_views=4, work_factor=512.0)
GAUSS_CFG = gauss.GaussConfig(n=48, work_factor=1000.0)
# SOR needs the 16p geometry for false sharing to bite (see EXPERIMENTS.md)
SOR_CFG = sor.SorConfig(rows=200, cols=64, iterations=4, work_factor=655.0)
SOR_NPROCS = 16
NN_CFG = nn.NnConfig(n_samples=256, epochs=8, work_factor=64.0)


@pytest.fixture(scope="module")
def is_results():
    return {p: run_app(is_sort, p, NPROCS, IS_CFG) for p in ("lrc_d", "vc_d", "vc_sd")}


def test_table1_shape_vc_beats_lrc_despite_more_messages(is_results):
    lrc, vc_d, vc_sd = (is_results[p].stats for p in ("lrc_d", "vc_d", "vc_sd"))
    assert vc_d.net.num_msg > lrc.net.num_msg
    assert vc_d.time < lrc.time
    assert vc_sd.diff_requests == 0 and vc_d.diff_requests > 0
    assert vc_sd.net.num_msg < vc_d.net.num_msg


def test_table1_shape_barrier_cost(is_results):
    lrc, vc_d = is_results["lrc_d"].stats, is_results["vc_d"].stats
    assert lrc.barrier_time_avg > 3 * vc_d.barrier_time_avg


def test_table2_shape_fewer_barriers_faster():
    full = run_app(is_sort, "vc_sd", NPROCS, IS_CFG)
    lb = run_app(is_sort, "vc_sd", NPROCS, IS_CFG, variant="lb")
    assert lb.stats.barriers < full.stats.barriers
    assert lb.time <= full.time


def test_table4_shape_gauss_false_sharing():
    lrc = run_app(gauss, "lrc_d", NPROCS, GAUSS_CFG)
    vc_d = run_app(gauss, "vc_d", NPROCS, GAUSS_CFG)
    assert lrc.stats.diff_requests > 3 * vc_d.stats.diff_requests
    assert vc_d.stats.net.data_bytes < lrc.stats.net.data_bytes
    assert vc_d.time < lrc.time


def test_table6_shape_sor_border_views():
    lrc = run_app(sor, "lrc_d", SOR_NPROCS, SOR_CFG)
    sd = run_app(sor, "vc_sd", SOR_NPROCS, SOR_CFG)
    assert sd.stats.net.data_bytes < lrc.stats.net.data_bytes
    assert sd.time < lrc.time


def test_table8_shape_nn_vc_sd_fastest():
    lrc = run_app(nn, "lrc_d", NPROCS, NN_CFG)
    sd = run_app(nn, "vc_sd", NPROCS, NN_CFG)
    assert sd.time < lrc.time
    assert sd.stats.diff_requests == 0


def test_table9_shape_mpi_vs_vopp():
    sd = run_app(nn, "vc_sd", NPROCS, NN_CFG)
    mpi = run_app(nn, "mpi", NPROCS, NN_CFG)
    # comparable at this scale (within 2x), MPI never loses badly
    assert sd.time < 2 * mpi.time
    assert mpi.stats.data_bytes < sd.stats.net.data_bytes
