"""Gauss correctness across protocols and processor counts."""

import numpy as np
import pytest

from repro.apps import gauss
from repro.apps.common import run_app

SMALL = gauss.GaussConfig(n=24, work_factor=1.0)


def test_sequential_produces_upper_triangular():
    out = gauss.sequential(SMALL)
    lower = np.tril(out, k=-1)
    assert np.max(np.abs(lower)) < 1e-9


def test_sequential_is_deterministic():
    assert np.array_equal(gauss.sequential(SMALL), gauss.sequential(SMALL))


@pytest.mark.parametrize("protocol", ["lrc_d", "vc_d", "vc_sd"])
@pytest.mark.parametrize("nprocs", [1, 2, 4])
def test_parallel_matches_sequential_bitwise(protocol, nprocs):
    result = run_app(gauss, protocol, nprocs, SMALL)
    assert result.verified


def test_uneven_distribution():
    """n not divisible by nprocs: cyclic rows still cover everything."""
    cfg = gauss.GaussConfig(n=17, work_factor=1.0)
    result = run_app(gauss, "vc_sd", 3, cfg)
    assert result.verified


def test_false_sharing_shows_in_lrc_diff_requests():
    """The paper's Table 4 effect: LRC_d needs far more diff requests."""
    lrc = run_app(gauss, "lrc_d", 4, SMALL)
    vc = run_app(gauss, "vc_d", 4, SMALL)
    assert lrc.stats.diff_requests > vc.stats.diff_requests


def test_vopp_moves_less_data():
    lrc = run_app(gauss, "lrc_d", 4, SMALL)
    sd = run_app(gauss, "vc_sd", 4, SMALL)
    assert sd.stats.net.data_bytes < lrc.stats.net.data_bytes
