"""IS correctness across protocols, variants and processor counts."""

import numpy as np
import pytest

from repro.apps import is_sort
from repro.apps.common import run_app

SMALL = is_sort.IsConfig(n_keys=2000, b_max=64, reps=4, bucket_views=4, work_factor=1.0)


def test_sequential_reference_properties():
    out = is_sort.sequential(SMALL)
    assert out["prefix"].shape == (64,)
    assert out["ranks"].shape == (2000,)
    assert out["prefix"][0] == 0
    # prefix is non-decreasing and ends below total count
    assert np.all(np.diff(out["prefix"]) >= 0)
    assert out["prefix"][-1] <= SMALL.reps * SMALL.n_keys


def test_sequential_is_deterministic():
    a = is_sort.sequential(SMALL)
    b = is_sort.sequential(SMALL)
    assert np.array_equal(a["ranks"], b["ranks"])


@pytest.mark.parametrize("protocol", ["lrc_d", "vc_d", "vc_sd"])
@pytest.mark.parametrize("nprocs", [1, 2, 4])
def test_parallel_matches_sequential(protocol, nprocs):
    result = run_app(is_sort, protocol, nprocs, SMALL)
    assert result.verified


@pytest.mark.parametrize("protocol", ["vc_d", "vc_sd"])
def test_vopp_lb_variant_matches(protocol):
    result = run_app(is_sort, protocol, 4, SMALL, variant="lb")
    assert result.verified


def test_lb_variant_has_fewer_barriers():
    full = run_app(is_sort, "vc_sd", 4, SMALL)
    lb = run_app(is_sort, "vc_sd", 4, SMALL, variant="lb")
    assert lb.stats.barriers < full.stats.barriers
    assert lb.time < full.time


def test_traditional_uses_no_locks():
    result = run_app(is_sort, "lrc_d", 4, SMALL)
    assert result.stats.acquires == 0  # Table 1: Acquires 0 for LRC_d


def test_vopp_uses_views_not_barrier_consistency():
    result = run_app(is_sort, "vc_sd", 4, SMALL)
    assert result.stats.acquires > 0
    assert result.stats.diff_requests == 0  # VC_sd signature


def test_vc_d_issues_diff_requests():
    result = run_app(is_sort, "vc_d", 4, SMALL)
    assert result.stats.diff_requests > 0


def test_bad_bucket_view_split_rejected():
    from repro.core import VoppSystem

    cfg = is_sort.IsConfig(n_keys=100, b_max=10, reps=1, bucket_views=3)
    with pytest.raises(ValueError):
        is_sort.build(VoppSystem(2), cfg)


def test_chunk_bounds_cover_everything():
    from repro.apps.common import chunk_bounds

    for total in (1, 7, 100):
        for nprocs in (1, 3, 8):
            spans = [chunk_bounds(total, nprocs, r) for r in range(nprocs)]
            assert spans[0][0] == 0
            assert spans[-1][1] == total
            for (a, b), (c, d) in zip(spans, spans[1:]):
                assert b == c
