"""SOR correctness across protocols and processor counts."""

import numpy as np
import pytest

from repro.apps import sor
from repro.apps.common import run_app

SMALL = sor.SorConfig(rows=20, cols=16, iterations=3, work_factor=1.0)


def test_sequential_preserves_boundary():
    grid0 = sor._grid(SMALL)
    out = sor.sequential(SMALL)
    assert np.array_equal(out[0], grid0[0])
    assert np.array_equal(out[-1], grid0[-1])
    assert np.array_equal(out[:, 0], grid0[:, 0])
    assert np.array_equal(out[:, -1], grid0[:, -1])


def test_sequential_changes_interior():
    grid0 = sor._grid(SMALL)
    out = sor.sequential(SMALL)
    assert not np.array_equal(out[1:-1, 1:-1], grid0[1:-1, 1:-1])


@pytest.mark.parametrize("protocol", ["lrc_d", "vc_d", "vc_sd"])
@pytest.mark.parametrize("nprocs", [1, 2, 4])
def test_parallel_matches_sequential_bitwise(protocol, nprocs):
    result = run_app(sor, protocol, nprocs, SMALL)
    assert result.verified


def test_uneven_row_blocks():
    cfg = sor.SorConfig(rows=19, cols=16, iterations=2, work_factor=1.0)
    result = run_app(sor, "vc_sd", 3, cfg)
    assert result.verified


def test_vopp_transfers_only_borders():
    """The §3.3 effect: VOPP moves clearly less data than LRC once block
    boundaries fall inside pages (false sharing)."""
    cfg = sor.SorConfig(rows=40, cols=64, iterations=6, work_factor=1.0)
    lrc = run_app(sor, "lrc_d", 4, cfg)
    d = run_app(sor, "vc_d", 4, cfg)
    # at 4 procs the blocks are boundary-dominated, so the gap is modest; the
    # benchmark at 16 procs shows the ~2x gap (EXPERIMENTS.md, Table 6)
    assert d.stats.net.data_bytes < 0.85 * lrc.stats.net.data_bytes


def test_relax_color_counts_updates():
    g = np.ones((6, 8))
    n = sor._relax_color(g, 1, 5, 0)
    assert n == 4 * 3  # 4 interior rows, 3 cells of each colour per row
