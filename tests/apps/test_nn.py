"""NN correctness across protocols (incl. MPI) and processor counts."""

import numpy as np
import pytest

from repro.apps import nn
from repro.apps.common import run_app

SMALL = nn.NnConfig(n_samples=64, epochs=5, d_hidden=8, work_factor=1.0)


def test_sequential_training_reduces_loss():
    out = nn.sequential(SMALL)
    assert out["loss"] < out["initial_loss"]


def test_gradient_matches_numerical():
    """Finite-difference check on a tiny instance."""
    cfg = nn.NnConfig(n_samples=8, d_in=3, d_hidden=4, d_out=1, epochs=1)
    x, y = nn._dataset(cfg)
    w = nn._init_weights(cfg)
    g = nn._gradient(w, x, y, cfg)
    eps = 1e-6
    for idx in [0, 5, len(w) // 2, len(w) - 1]:
        wp = w.copy()
        wp[idx] += eps
        wm = w.copy()
        wm[idx] -= eps
        num = (
            (nn._loss(wp, x, y, cfg) - nn._loss(wm, x, y, cfg))
            * cfg.n_samples
            * cfg.d_out
            / (2 * eps)
        )
        assert abs(num - 2 * g[idx]) < 1e-4 * max(1.0, abs(g[idx]))


@pytest.mark.parametrize("protocol", ["lrc_d", "vc_d", "vc_sd", "mpi"])
@pytest.mark.parametrize("nprocs", [1, 2, 4])
def test_parallel_matches_sequential(protocol, nprocs):
    if protocol == "mpi" and nprocs == 1:
        pytest.skip("1-rank MPI scatter degenerates; covered by nprocs>=2")
    result = run_app(nn, protocol, nprocs, SMALL)
    assert result.verified


def test_uneven_sample_split():
    cfg = nn.NnConfig(n_samples=50, epochs=3, d_hidden=8, work_factor=1.0)
    result = run_app(nn, "vc_sd", 3, cfg)
    assert result.verified


def test_vopp_uses_rviews_for_weights():
    """Weight reads must be concurrent (acquire_Rview) — the §3.4 point."""
    from repro.net.message import MessageKind

    result = run_app(nn, "vc_sd", 4, SMALL)
    assert result.stats.acquires > 0
    assert result.stats.diff_requests == 0


def test_mpi_moves_least_data():
    """Table 9 shape at small scale: MPI transfers less than any DSM."""
    sd = run_app(nn, "vc_sd", 4, SMALL)
    mpi = run_app(nn, "mpi", 4, SMALL)
    assert mpi.stats.data_bytes < sd.stats.net.data_bytes


def test_n_weights_layout():
    cfg = nn.NnConfig(d_in=3, d_hidden=4, d_out=2)
    assert nn.n_weights(cfg) == 3 * 4 + 4 + 4 * 2 + 2
    w = np.arange(nn.n_weights(cfg), dtype=float)
    w1, b1, w2, b2 = nn._unpack(w, cfg)
    assert w1.shape == (3, 4) and b1.shape == (4,)
    assert w2.shape == (4, 2) and b2.shape == (2,)
    # unpack is a view decomposition covering every weight exactly once
    rebuilt = np.concatenate([w1.ravel(), b1, w2.ravel(), b2])
    assert np.array_equal(rebuilt, w)
