"""Delta-debugging shrinker: ddmin minimality and plan shrinking."""

from repro.faults import Episode, FaultPlan
from repro.faults.shrink import ddmin, shrink_plan


# -- ddmin on plain sequences ----------------------------------------------------


def test_ddmin_single_culprit():
    # one item drives the predicate: ddmin must isolate exactly it
    items = list(range(20))
    result = ddmin(items, lambda subset: 13 in subset)
    assert result == (13,)


def test_ddmin_pair_of_culprits():
    items = list(range(16))
    result = ddmin(items, lambda subset: 3 in subset and 11 in subset)
    assert result == (3, 11)


def test_ddmin_preserves_relative_order():
    items = ["a", "b", "c", "d", "e", "f"]
    result = ddmin(items, lambda s: "e" in s and "b" in s)
    assert result == ("b", "e")


def test_ddmin_everything_needed_returns_all():
    items = [1, 2, 3, 4]
    result = ddmin(items, lambda subset: len(subset) == len(items))
    assert result == (1, 2, 3, 4)


def test_ddmin_never_proposes_empty():
    proposed = []

    def keep(subset):
        proposed.append(subset)
        return 0 in subset

    ddmin([0, 1], keep)
    assert all(len(s) > 0 for s in proposed)


def test_ddmin_result_is_one_minimal():
    # after ddmin, removing any single element must break the predicate
    def keep(subset):
        return 2 in subset and 7 in subset and 9 in subset

    result = ddmin(list(range(12)), keep)
    assert keep(result)
    for i in range(len(result)):
        assert not keep(result[:i] + result[i + 1:])


# -- shrink_plan ------------------------------------------------------------------


def _plan(*kinds, seed=5):
    eps = tuple(Episode(kind=k, drop_prob=0.1) if k == "loss"
                else Episode(kind=k, cpu_factor=2.0, node=0) for k in kinds)
    return FaultPlan(eps, seed=seed)


def test_shrink_plan_trivial_plans_unchanged():
    empty = FaultPlan()
    assert shrink_plan(empty, lambda p: True) is empty
    one = _plan("loss")
    assert shrink_plan(one, lambda p: True) is one


def test_shrink_plan_drops_freeloaders_and_keeps_seed():
    plan = _plan("loss", "slowdown", "loss", "slowdown", seed=42)

    # only slowdown episodes matter to this predicate
    def keep(candidate):
        return any(ep.kind == "slowdown" for ep in candidate.episodes)

    small = shrink_plan(plan, keep)
    assert len(small.episodes) == 1
    assert small.episodes[0].kind == "slowdown"
    assert small.seed == 42
    small.validate()
