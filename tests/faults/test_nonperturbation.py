"""Non-perturbation: fault support must cost nothing when unused.

Two guarantees, checked against the committed ``BENCH_sweep.json`` reference
(produced before a plan is ever installed):

* a run with **no plan** is bit-identical to the committed fingerprints —
  the ``if faults is not None`` hook sites perturb nothing;
* a run with an **empty plan installed** is bit-identical too — an armed
  but quiescent injector draws no randomness and changes no event ordering.

Identity covers the statistics row (the fingerprint hashes ``table_row``)
*and* the executed-event count, the strictest cheap proxy for "the same
simulation happened".
"""

import hashlib
import json
import pathlib

import pytest

from repro.apps import APPS
from repro.apps.common import run_app
from repro.faults import FaultPlan

REPO = pathlib.Path(__file__).resolve().parents[2]

# cheap-to-run subset of the committed 18-cell matrix (one per app, mixed
# protocols); the full matrix is re-verified by the CI chaos-smoke job
CHECKED_CELLS = [
    ("is", "lrc_d", 8),
    ("gauss", "vc_sd", 8),
    ("sor", "vc_d", 8),
    ("nn", "lrc_d", 8),
]


def _fingerprint(result) -> str:
    return hashlib.sha256(
        json.dumps(result.table_row(), sort_keys=True).encode()
    ).hexdigest()[:16]


def _committed():
    path = REPO / "BENCH_sweep.json"
    if not path.exists():
        pytest.skip("no committed BENCH_sweep.json in this checkout")
    cells = {}
    for cell in json.loads(path.read_text())["cells"]:
        cells[(cell["app"], cell["protocol"], cell["nprocs"], cell["variant"])] = cell
    return cells


@pytest.mark.parametrize("app,protocol,nprocs", CHECKED_CELLS)
def test_no_plan_matches_committed_sweep(app, protocol, nprocs):
    committed = _committed()
    reference = committed[(app, protocol, nprocs, "default")]
    result = run_app(APPS[app], protocol, nprocs)
    assert _fingerprint(result) == reference["fingerprint"]
    assert result.events == reference["events"]
    assert result.table_row() == reference["table_row"]


@pytest.mark.parametrize("app,protocol,nprocs", CHECKED_CELLS)
def test_empty_plan_matches_committed_sweep(app, protocol, nprocs):
    committed = _committed()
    reference = committed[(app, protocol, nprocs, "default")]
    result = run_app(APPS[app], protocol, nprocs, faults=FaultPlan())
    assert _fingerprint(result) == reference["fingerprint"]
    assert result.events == reference["events"]
    assert result.table_row() == reference["table_row"]


def test_backoff_defaults_leave_dup_horizon_unchanged():
    """The derived duplicate horizon equals the old hard-coded one at the
    paper's fixed schedule — a silent widening would change eviction timing
    (and with it, nothing observable, but the invariant is cheap to pin)."""
    from repro.net import Cluster, NetConfig

    cfg = NetConfig()
    c = Cluster(2, netcfg=cfg)
    assert c[0].transport._dup_horizon == pytest.approx(
        (cfg.max_retries + 2) * cfg.rexmit_timeout
    )
