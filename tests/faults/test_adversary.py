"""Adversarial search: operator safety, determinism, shrink replay.

The ISSUE's property tests live here:

- every mutation/crossover operator emits plans that pass ``validate()``;
- a search with a fixed seed + budget is bit-reproducible (cache on, cache
  off, and cache-warm all agree);
- the shrunk winner replays into the same fitness class.
"""

import random

import pytest

from repro.faults import FaultPlan
from repro.faults.adversary import (
    GENERATED_KINDS,
    MUTATIONS,
    AdversaryLimits,
    Evaluator,
    Fitness,
    EvalOutcome,
    crossover,
    fitness_of,
    random_episode,
    search,
    seed_plans,
)

LIMITS = AdversaryLimits(horizon=4.0, nprocs=8)


# -- operator properties ----------------------------------------------------------


def test_generated_kinds_exclude_crash():
    assert "crash" not in GENERATED_KINDS


def test_random_episode_always_validates():
    rng = random.Random(1)
    for _ in range(300):
        ep = random_episode(rng, LIMITS)
        ep.validate()
        assert ep.kind in GENERATED_KINDS


@pytest.mark.parametrize("op", [op for op, _w in MUTATIONS],
                         ids=[op.__name__ for op, _w in MUTATIONS])
def test_mutation_operators_emit_valid_plans(op):
    rng = random.Random(7)
    plan = FaultPlan(seed=0)
    for _ in range(200):
        plan = op(rng, plan, LIMITS)
        plan.validate()
        assert all(ep.kind in GENERATED_KINDS for ep in plan.episodes)


def test_mutation_operators_move_from_empty_plan():
    # every operator must make progress even on an episode-free plan
    for op, _w in MUTATIONS:
        rng = random.Random(3)
        mutated = op(rng, FaultPlan(seed=0), LIMITS)
        mutated.validate()


def test_crossover_emits_valid_nonempty_plans():
    rng = random.Random(11)
    for _ in range(200):
        a = FaultPlan(tuple(random_episode(rng, LIMITS)
                            for _ in range(rng.randrange(1, 4))), seed=1)
        b = FaultPlan(tuple(random_episode(rng, LIMITS)
                            for _ in range(rng.randrange(1, 4))), seed=2)
        child = crossover(rng, a, b)
        child.validate()
        assert child.episodes  # at least one parent episode survives


def test_seed_plans_are_valid_and_deterministic():
    plans_a = seed_plans(random.Random(9), LIMITS, population=8)
    plans_b = seed_plans(random.Random(9), LIMITS, population=8)
    assert len(plans_a) == 8
    for plan in plans_a:
        plan.validate()
    assert [p.canonical() for p in plans_a] == [p.canonical() for p in plans_b]


# -- fitness ordering -------------------------------------------------------------


def test_fitness_lexicographic_order():
    slow = Fitness(0, 100.0)
    abort = Fitness(1, 1.5)
    jackpot = Fitness(2, 1.0)
    assert jackpot > abort > slow
    assert Fitness(0, 2.0) > Fitness(0, 1.0)
    assert (slow.cls, abort.cls, jackpot.cls) == (
        "slowdown", "abort", "consistency")


def test_fitness_of_classes():
    base = 2.0
    assert fitness_of(EvalOutcome(completed=True, sim_time=8.0), base) == \
        Fitness(0, 4.0)
    assert fitness_of(EvalOutcome(completed=False, sim_time=1.0), base) == \
        Fitness(1, 2.0)
    assert fitness_of(
        EvalOutcome(completed=True, sim_time=8.0, findings=3,
                    verdict="violations"), base) == Fitness(2, 3.0)
    # a wrong answer is a jackpot even with zero oracle findings
    assert fitness_of(
        EvalOutcome(completed=True, sim_time=0.0, verdict="wrong-answer",
                    findings=1), base).rank == 2


# -- the search itself (small real cell) ------------------------------------------

CELL = dict(app="is", protocol="lrc_d", nprocs=4, budget=5, seed=3,
            population=4)


@pytest.fixture(scope="module")
def small_search():
    return search(**CELL)


def test_search_finds_a_degrading_plan(small_search):
    r = small_search
    assert r.evals == CELL["budget"]
    assert r.best["class"] in ("slowdown", "abort", "consistency")
    assert r.best["magnitude"] > 1.0
    assert r.best_completed is not None
    assert r.best_completed["slowdown"] > 1.0
    assert r.trajectory and r.trajectory[0]["eval"] >= 1
    FaultPlan.from_json(r.best["plan"]).validate()


def test_search_bit_reproducible_without_cache(small_search):
    again = search(**CELL)
    assert again.to_json() == small_search.to_json()


def test_search_bit_reproducible_with_cache(small_search, tmp_path):
    cache = str(tmp_path / "cache")
    cold = search(**CELL, cache_dir=cache)
    warm = search(**CELL, cache_dir=cache)
    assert cold.to_json() == small_search.to_json()
    assert warm.to_json() == small_search.to_json()


def test_shrunk_plan_replays_to_same_fitness_class(small_search):
    r = small_search
    assert r.shrunk is not None
    plan = FaultPlan.from_json(r.shrunk["plan"])
    plan.validate()
    assert len(plan.episodes) <= r.best["episodes"]
    ev = Evaluator(CELL["app"], CELL["protocol"], CELL["nprocs"])
    fit = fitness_of(ev.evaluate(plan), r.baseline_time)
    assert fit.cls == r.best["class"]
    assert fit.magnitude >= 0.9 * r.best["magnitude"]


def test_search_rejects_unclean_baseline(monkeypatch):
    bad = EvalOutcome(completed=False, sim_time=1.0)
    monkeypatch.setattr(Evaluator, "evaluate", lambda self, plan: bad)
    with pytest.raises(RuntimeError, match="not clean"):
        search(**CELL)


def test_evaluator_memoises_by_canonical_plan():
    ev = Evaluator("is", "lrc_d", 4)
    plan = seed_plans(random.Random(1), LIMITS, 1)[0]
    first = ev.evaluate(plan)
    assert ev.evals == 1
    # structurally identical plan (new object): memo hit, no new run
    clone = FaultPlan.from_json(plan.to_json())
    assert ev.evaluate(clone) is first
    assert ev.evals == 1
