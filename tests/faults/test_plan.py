"""FaultPlan schema: validation, JSON round-trips, targeting semantics."""

import json
import math

import pytest

from repro.faults import EPISODE_KINDS, Episode, FaultPlan, FaultPlanError


# -- episode validation ----------------------------------------------------------


def test_every_documented_kind_validates():
    ok = {
        "loss": dict(drop_prob=0.1),
        "degrade": dict(latency_add=0.01, bandwidth_factor=2.0),
        "buffer": dict(node=0, buffer_factor=0.25),
        "duplicate": dict(dup_prob=0.05),
        "reorder": dict(reorder_prob=0.1, reorder_delay=0.002),
        "slowdown": dict(node=1, cpu_factor=4.0),
        "pause": dict(node=1, start=1.0, end=2.0),
        "crash": dict(node=2, start=5.0),
    }
    assert set(ok) == set(EPISODE_KINDS)
    for kind, knobs in ok.items():
        Episode(kind=kind, **knobs).validate()


def test_unknown_kind_rejected():
    with pytest.raises(FaultPlanError, match="unknown episode kind"):
        Episode(kind="meteor").validate()


def test_empty_or_negative_window_rejected():
    with pytest.raises(FaultPlanError, match="empty window"):
        Episode(kind="loss", start=2.0, end=2.0).validate()
    with pytest.raises(FaultPlanError, match="start must be >= 0"):
        Episode(kind="loss", start=-1.0).validate()


@pytest.mark.parametrize(
    "kwargs, match",
    [
        (dict(kind="loss", drop_prob=1.5), "drop_prob"),
        (dict(kind="duplicate", dup_prob=-0.1), "dup_prob"),
        (dict(kind="degrade", bandwidth_factor=0.5), "bandwidth_factor"),
        (dict(kind="buffer", node=0, buffer_factor=0.0), "buffer_factor"),
        (dict(kind="buffer", node=0, buffer_factor=1.5), "buffer_factor"),
        (dict(kind="slowdown", node=0, cpu_factor=0.9), "cpu_factor"),
        (dict(kind="reorder", reorder_prob=0.5, reorder_delay=-1.0), "delays"),
    ],
)
def test_out_of_range_knobs_rejected(kwargs, match):
    with pytest.raises(FaultPlanError, match=match):
        Episode(**kwargs).validate()


def test_knob_on_wrong_kind_rejected():
    # a loss episode has no business setting cpu_factor
    with pytest.raises(FaultPlanError, match="not valid for this kind"):
        Episode(kind="loss", drop_prob=0.1, cpu_factor=2.0).validate()


def test_pause_requires_finite_end():
    with pytest.raises(FaultPlanError, match="finite end"):
        Episode(kind="pause", node=0).validate()


def test_crash_requires_a_node():
    with pytest.raises(FaultPlanError, match="requires a node"):
        Episode(kind="crash", start=1.0).validate()


# -- targeting semantics ---------------------------------------------------------


def test_window_is_half_open():
    ep = Episode(kind="loss", start=1.0, end=2.0, drop_prob=1.0)
    assert not ep.active(0.999)
    assert ep.active(1.0)
    assert ep.active(1.999)
    assert not ep.active(2.0)


def test_matches_filters_src_dst_and_node():
    assert Episode(kind="loss").matches(0, 1)  # untargeted: everything
    link = Episode(kind="loss", src=0, dst=1)
    assert link.matches(0, 1)
    assert not link.matches(1, 0)  # directional
    node = Episode(kind="loss", node=2)
    assert node.matches(2, 5) and node.matches(5, 2)  # either endpoint
    assert not node.matches(0, 1)


# -- JSON round-trips ------------------------------------------------------------


def test_episode_to_json_is_minimal():
    ep = Episode(kind="loss", drop_prob=0.02)
    assert ep.to_json() == {"kind": "loss", "drop_prob": 0.02}
    # the open-ended default window never serialises an explicit infinity
    assert "end" not in ep.to_json() and "start" not in ep.to_json()


def test_plan_roundtrip(tmp_path):
    plan = FaultPlan(
        (
            Episode(kind="loss", drop_prob=0.01, start=0.5, end=1.5, node=3),
            Episode(kind="duplicate", dup_prob=0.05),
            Episode(kind="crash", node=1, start=9.0),
        ),
        seed=42,
    )
    path = tmp_path / "plan.json"
    plan.dump(str(path))
    again = FaultPlan.load(str(path))
    assert again == plan
    # and the on-disk form is plain JSON (hand-editable)
    data = json.loads(path.read_text())
    assert data["seed"] == 42
    assert len(data["episodes"]) == 3


def test_from_json_rejects_unknown_fields():
    with pytest.raises(FaultPlanError, match="unknown fault-plan field"):
        FaultPlan.from_json({"seed": 1, "surprise": True})
    with pytest.raises(FaultPlanError, match="unknown episode field"):
        FaultPlan.from_json({"episodes": [{"kind": "loss", "drop_probability": 0.1}]})
    with pytest.raises(FaultPlanError, match="must be a list"):
        FaultPlan.from_json({"episodes": {"kind": "loss"}})
    with pytest.raises(FaultPlanError, match="'kind'"):
        FaultPlan.from_json({"episodes": [{"drop_prob": 0.1}]})


def test_load_rejects_invalid_json(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    with pytest.raises(FaultPlanError, match="not valid JSON"):
        FaultPlan.load(str(path))


def test_infinite_window_survives_roundtrip():
    plan = FaultPlan((Episode(kind="loss", drop_prob=0.1),))
    again = FaultPlan.from_json(plan.to_json())
    assert again.episodes[0].end == math.inf


# -- plan helpers ----------------------------------------------------------------


def test_by_kind_and_extended():
    loss = Episode(kind="loss", drop_prob=0.1)
    dup = Episode(kind="duplicate", dup_prob=0.1)
    plan = FaultPlan((loss,), seed=9)
    assert plan.by_kind("loss") == (loss,)
    assert plan.by_kind("duplicate") == ()
    grown = plan.extended(dup)
    assert grown.episodes == (loss, dup)
    assert grown.seed == 9
    assert plan.episodes == (loss,)  # original untouched


def test_empty_plan_is_legal():
    FaultPlan().validate()
    assert FaultPlan.from_json({}) == FaultPlan()


# -- field-path error reporting ---------------------------------------------------


def test_plan_errors_name_episode_index_and_field_path():
    plan = FaultPlan((
        Episode(kind="loss", drop_prob=0.1),
        Episode(kind="loss", drop_prob=1.5),
    ))
    with pytest.raises(FaultPlanError, match=r"episodes\[1\]\.drop_prob"):
        plan.validate()


def test_from_json_errors_carry_field_path():
    doc = {"episodes": [
        {"kind": "loss", "drop_prob": 0.1},
        {"kind": "loss", "drop_prob": 0.1},
        {"kind": "slowdown", "node": 0, "cpu_factor": 0.5},
    ]}
    with pytest.raises(FaultPlanError, match=r"episodes\[2\]\.cpu_factor") as ei:
        FaultPlan.from_json(doc)
    assert ei.value.field == "cpu_factor"


def test_unknown_field_error_names_it():
    with pytest.raises(FaultPlanError, match=r"episodes\[0\]") as ei:
        FaultPlan.from_json({"episodes": [{"kind": "loss", "drop_probb": 0.1}]})
    assert ei.value.field == "drop_probb"


def test_episode_error_field_attribute():
    with pytest.raises(FaultPlanError) as ei:
        Episode(kind="pause", node=0).validate()  # pause needs a finite end
    assert ei.value.field == "end"
