"""Graceful failure reporting: RunFailure structure and the pinned exit code.

A hostile network must end a run with a one-screen diagnostic and CLI exit
code 3 — never a traceback, never a hang.  The exit code is part of the CLI
contract (scripts and CI match on it), so it is pinned literally here.
"""

import json

import pytest

from repro.apps import APPS
from repro.apps.common import run_app
from repro.cli import main
from repro.faults import (
    EXIT_RUN_FAILURE,
    Episode,
    FaultPlan,
    RunAborted,
    describe_failure,
    format_failure,
)


def test_exit_code_is_pinned():
    # 0 = success, 2 = argparse/user error, 3 = structured run failure
    assert EXIT_RUN_FAILURE == 3


# -- describe_failure ------------------------------------------------------------


def test_unrelated_exceptions_are_not_described():
    class FakeCluster:
        nodes = ()

    assert describe_failure(ValueError("a genuine bug"), FakeCluster()) is None


def test_crash_plan_aborts_run_app_with_structured_failure():
    plan = FaultPlan((Episode(kind="crash", node=1, start=0.005),))
    with pytest.raises(RunAborted) as exc_info:
        run_app(APPS["is"], "vc_sd", 4, faults=plan)
    failure = exc_info.value.failure
    assert failure.reason == "node-crash"
    assert failure.node == 1
    assert failure.sim_time == pytest.approx(0.005)
    assert failure.net is not None and failure.net["num_msg"] >= 0
    # JSON form round-trips for machine consumption (degradation grid, CI)
    assert json.loads(json.dumps(failure.to_json()))["reason"] == "node-crash"


def test_retry_exhaustion_aborts_with_context():
    from repro.net.config import NetConfig

    # total blackout: every transfer dropped, so the first reliable send
    # burns its whole retry budget and must abort (not hang)
    plan = FaultPlan((Episode(kind="loss", drop_prob=1.0),))
    netcfg = NetConfig(rexmit_timeout=0.05, max_retries=3)
    with pytest.raises(RunAborted) as exc_info:
        run_app(APPS["is"], "vc_sd", 2, netcfg=netcfg, faults=plan)
    failure = exc_info.value.failure
    assert failure.reason == "retry-exhausted"
    assert failure.attempts == 3
    assert failure.kind is not None
    assert failure.node is not None and failure.dst is not None
    assert failure.net["drops_by_cause"].get("fault", 0) > 0


def test_format_failure_is_one_screen_and_informative():
    plan = FaultPlan((Episode(kind="crash", node=0, start=0.01),))
    with pytest.raises(RunAborted) as exc_info:
        run_app(APPS["sor"], "lrc_d", 2, faults=plan)
    text = format_failure(exc_info.value.failure)
    assert "run failed: node-crash" in text
    assert "failing node       0" in text
    assert "hint:" in text
    assert len(text.splitlines()) <= 25, "diagnostic must fit one screen"


# -- CLI surface -----------------------------------------------------------------


def test_cli_hostile_network_exits_3(capsys):
    assert main(["run", "is", "--nprocs", "2", "--drop-prob", "1.0"]) == 3
    captured = capsys.readouterr()
    assert "run failed: retry-exhausted" in captured.err
    assert "Traceback" not in captured.err


def test_cli_crash_plan_exits_3(capsys, tmp_path):
    path = tmp_path / "crash.json"
    FaultPlan((Episode(kind="crash", node=1, start=0.01),)).dump(str(path))
    code = main(
        ["run", "is", "--nprocs", "2", "--protocol", "vc_sd", "--faults", str(path)]
    )
    assert code == 3
    captured = capsys.readouterr()
    assert "run failed: node-crash" in captured.err
    assert "Traceback" not in captured.err


def test_cli_rejects_bad_plan_file(tmp_path, capsys):
    path = tmp_path / "bad.json"
    path.write_text('{"episodes": [{"kind": "meteor"}]}')
    with pytest.raises(SystemExit) as exc_info:
        main(["run", "is", "--nprocs", "2", "--faults", str(path)])
    assert "unknown episode kind" in str(exc_info.value)


def test_cli_rejects_out_of_range_drop_prob():
    with pytest.raises(SystemExit) as exc_info:
        main(["run", "is", "--nprocs", "2", "--drop-prob", "1.5"])
    assert "--drop-prob" in str(exc_info.value)


def test_cli_benign_plan_still_succeeds(capsys, tmp_path):
    path = tmp_path / "mild.json"
    FaultPlan(
        (Episode(kind="loss", drop_prob=0.01),), seed=5
    ).dump(str(path))
    assert main(
        ["run", "is", "--nprocs", "2", "--protocol", "vc_sd", "--faults", str(path)]
    ) == 0
    out = capsys.readouterr().out
    assert "verified against sequential reference" in out


# -- plan + seed embedding (replayable forensics) ---------------------------------


def test_failure_embeds_active_plan_and_seeds():
    plan = FaultPlan((Episode(kind="crash", node=1, start=0.005),), seed=99)
    with pytest.raises(RunAborted) as exc_info:
        run_app(APPS["is"], "vc_sd", 4, faults=plan)
    failure = exc_info.value.failure
    assert failure.faults == plan.to_json()
    assert failure.seeds["faults_seed"] == 99
    assert "drop_seed" in failure.seeds
    doc = failure.to_json()
    assert doc["faults"]["episodes"][0]["kind"] == "crash"
    assert doc["seeds"]["faults_seed"] == 99
    # the dumped plan is directly replayable
    FaultPlan.from_json(failure.faults).validate()
    text = format_failure(failure)
    assert "fault plan" in text and "faults_seed=99" in text
    assert "--faults-out" in text


def test_failure_without_plan_omits_fault_block():
    from repro.net.config import NetConfig

    netcfg = NetConfig(random_drop_prob=1.0, rexmit_timeout=0.05, max_retries=2)
    with pytest.raises(RunAborted) as exc_info:
        run_app(APPS["is"], "vc_sd", 2, netcfg=netcfg)
    failure = exc_info.value.failure
    assert failure.faults is None
    text = format_failure(failure)
    assert "--faults-out" not in text and "faults_seed" not in text
