"""FaultInjector behaviour, episode kind by episode kind.

Every test drives a small raw :class:`~repro.net.cluster.Cluster` (no DSM
protocol on top) so the injected fault's effect is directly observable:
drops show up in ``NetStats.drops_by_cause["fault"]`` and in retransmissions,
duplicates must be absorbed by the transport, slowdown/pause stretch
simulated compute time, and a crash aborts ``sim.run``.
"""

import pytest

from repro.faults import (
    Episode,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    NodeCrashed,
    install_faults,
)
from repro.net import Cluster, MessageKind, NetConfig
from repro.sim import Timeout

FAST = NetConfig(rexmit_timeout=0.05, max_retries=10)


def _sink(received):
    def handler(msg):
        received.append(msg.payload)
        return
        yield  # pragma: no cover

    return handler


def _cluster(n, plan):
    c = Cluster(n, netcfg=FAST)
    injector = c.install_faults(plan)
    return c, injector


# -- loss ------------------------------------------------------------------------


def test_loss_window_only_hits_inside_the_window():
    plan = FaultPlan(
        (Episode(kind="loss", drop_prob=1.0, start=0.10, end=0.20),)
    )
    c, injector = _cluster(2, plan)
    received = []
    c[1].register_handler(MessageKind.TEST, _sink(received))

    def sender():
        yield from c[0].send_reliable(1, MessageKind.TEST, "early", size=64)
        early_rexmit = c.stats.rexmit
        yield Timeout(0.12 - c.sim.now)
        yield from c[0].send_reliable(1, MessageKind.TEST, "inside", size=64)
        assert early_rexmit == 0, "pre-window send must not retransmit"

    c.sim.spawn(sender())
    c.run()
    # both delivered: the transport rides out the window via retransmission
    assert received == ["early", "inside"]
    assert c.stats.drops_by_cause.get("fault", 0) >= 1
    assert c.stats.rexmit >= 1
    assert injector.injected["drop"] == c.stats.drops_by_cause["fault"]


def test_loss_on_one_link_direction_only():
    # drop everything 1 -> 0 (i.e. the transport ACKs) for a short window:
    # the payload still arrives exactly once, the sender just retransmits
    plan = FaultPlan(
        (Episode(kind="loss", drop_prob=1.0, src=1, dst=0, end=0.12),)
    )
    c, _ = _cluster(2, plan)
    received = []
    c[1].register_handler(MessageKind.TEST, _sink(received))

    def sender():
        yield from c[0].send_reliable(1, MessageKind.TEST, "once", size=64)

    c.sim.spawn(sender())
    c.run()
    assert received == ["once"]
    assert c.stats.rexmit >= 2
    assert c.stats.drops_by_cause["fault"] >= 2


# -- duplication -----------------------------------------------------------------


def test_duplicates_are_injected_and_suppressed():
    plan = FaultPlan((Episode(kind="duplicate", dup_prob=1.0),))
    c, injector = _cluster(2, plan)
    received = []
    c[1].register_handler(MessageKind.TEST, _sink(received))

    def sender():
        for k in range(5):
            yield from c[0].send_reliable(1, MessageKind.TEST, k, size=64)

    c.sim.spawn(sender())
    c.run()
    # every wire copy (payload + acks) was doubled, yet delivery is exactly-once
    assert received == list(range(5))
    assert injector.injected["duplicate"] >= 5
    assert c.stats.drops == 0


def test_duplicated_request_runs_handler_once():
    plan = FaultPlan((Episode(kind="duplicate", dup_prob=1.0),))
    c, _ = _cluster(2, plan)
    calls = []

    def responder(msg):
        calls.append(msg.payload)
        c[1].reply_to(msg, MessageKind.TEST, msg.payload * 2, size=32)
        return
        yield  # pragma: no cover

    c[1].register_handler(MessageKind.TEST, responder)
    out = []

    def requester():
        reply = yield from c[0].request(1, MessageKind.TEST, 21, size=64)
        out.append(reply.payload)

    c.sim.spawn(requester())
    c.run()
    assert out == [42]
    assert calls == [21], "at-most-once execution despite duplication"


# -- reordering ------------------------------------------------------------------


def test_reorder_delay_is_bounded():
    delay_cap = 0.01

    def one_send(plan):
        c = Cluster(2, netcfg=FAST)
        if plan is not None:
            c.install_faults(plan)
        arrivals = []

        def handler(msg):
            arrivals.append(c.sim.now)
            return
            yield  # pragma: no cover

        c[1].register_handler(MessageKind.TEST, handler)

        def sender():
            yield from c[0].send_reliable(1, MessageKind.TEST, "x", size=64)

        c.sim.spawn(sender())
        c.run()
        return arrivals[0]

    base = one_send(None)
    plan = FaultPlan(
        (Episode(kind="reorder", reorder_prob=1.0, reorder_delay=delay_cap),)
    )
    delayed = one_send(plan)
    assert base <= delayed <= base + delay_cap + 1e-9


# -- buffer shrink ---------------------------------------------------------------


def test_buffer_shrink_amplifies_congestion_loss():
    plan = FaultPlan((Episode(kind="buffer", node=0, buffer_factor=0.01),))
    c, _ = _cluster(4, plan)
    received = []
    c[0].register_handler(MessageKind.TEST, _sink(received))

    def sender(rank):
        yield from c[rank].send_reliable(0, MessageKind.TEST, rank, size=1000)

    for rank in (1, 2, 3):
        c.sim.spawn(sender(rank))
    c.run()
    # a simultaneous 3-sender burst cannot fit a ~1.3 KB buffer...
    assert c.stats.drops_by_cause.get("overflow", 0) >= 1
    # ...but retransmission still lands every message exactly once
    assert sorted(received) == [1, 2, 3]


def test_buffer_shrink_targets_only_the_named_node():
    plan = FaultPlan((Episode(kind="buffer", node=3, buffer_factor=0.01),))
    c, _ = _cluster(4, plan)
    received = []
    c[0].register_handler(MessageKind.TEST, _sink(received))

    def sender(rank):
        yield from c[rank].send_reliable(0, MessageKind.TEST, rank, size=1000)

    for rank in (1, 2, 3):
        c.sim.spawn(sender(rank))
    c.run()
    assert c.stats.drops == 0, "node 0's buffer is untouched"
    assert sorted(received) == [1, 2, 3]


# -- degrade ---------------------------------------------------------------------


def test_degrade_latency_and_bandwidth_slow_delivery():
    def one_send(plan):
        c = Cluster(2, netcfg=FAST)
        if plan is not None:
            c.install_faults(plan)
        arrivals = []

        def handler(msg):
            arrivals.append(c.sim.now)
            return
            yield  # pragma: no cover

        c[1].register_handler(MessageKind.TEST, handler)

        def sender():
            yield from c[0].send_reliable(1, MessageKind.TEST, "x", size=4096)

        c.sim.spawn(sender())
        c.run()
        return arrivals[0]

    base = one_send(None)
    lat = one_send(FaultPlan((Episode(kind="degrade", latency_add=0.004),)))
    assert lat == pytest.approx(base + 0.004)
    bw = one_send(FaultPlan((Episode(kind="degrade", bandwidth_factor=4.0),)))
    assert bw > base  # wire time stretched on both the TX and RX side


# -- slowdown / pause ------------------------------------------------------------


def test_slowdown_stretches_compute_on_target_node_only():
    plan = FaultPlan((Episode(kind="slowdown", node=0, cpu_factor=3.0),))
    c, _ = _cluster(2, plan)
    finished = {}

    def worker(rank):
        yield from c[rank].compute(0.1)
        finished[rank] = c.sim.now

    c.sim.spawn(worker(0))
    c.sim.spawn(worker(1))
    c.run()
    assert finished[0] == pytest.approx(0.3)
    assert finished[1] == pytest.approx(0.1)


def test_pause_stalls_work_until_the_window_ends():
    plan = FaultPlan((Episode(kind="pause", node=0, start=0.0, end=0.5),))
    c, _ = _cluster(2, plan)
    finished = []

    def worker():
        yield Timeout(0.2)
        yield from c[0].compute(0.1)  # starts mid-pause: +0.3 s stall
        finished.append(c.sim.now)
        yield from c[0].compute(0.1)  # after the window: normal speed
        finished.append(c.sim.now)

    c.sim.spawn(worker())
    c.run()
    assert finished[0] == pytest.approx(0.6)
    assert finished[1] == pytest.approx(0.7)


# -- crash -----------------------------------------------------------------------


def test_crash_aborts_the_run_at_the_scheduled_time():
    plan = FaultPlan((Episode(kind="crash", node=1, start=0.05),))
    c, _ = _cluster(2, plan)

    def worker():
        yield Timeout(10.0)

    c.sim.spawn(worker())
    with pytest.raises(NodeCrashed) as exc_info:
        c.run()
    assert exc_info.value.node == 1
    assert exc_info.value.sim_time == pytest.approx(0.05)
    assert c.sim.now == pytest.approx(0.05), "abort is immediate, not a hang"


# -- installation ----------------------------------------------------------------


def test_install_rejects_out_of_range_targets():
    plan = FaultPlan((Episode(kind="crash", node=5, start=1.0),))
    with pytest.raises(FaultPlanError, match="out of range"):
        Cluster(2, netcfg=FAST).install_faults(plan)


def test_injector_is_single_use():
    injector = FaultInjector(FaultPlan())
    install_faults(Cluster(2, netcfg=FAST), injector)
    with pytest.raises(FaultPlanError, match="only be installed once"):
        install_faults(Cluster(2, netcfg=FAST), injector)


def test_faults_default_to_none():
    c = Cluster(2, netcfg=FAST)
    assert c.sim.faults is None
