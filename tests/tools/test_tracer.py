"""Tests for the view tracer / tuning-advice tool."""

import numpy as np

from repro.core import VoppSystem
from repro.tools import ViewTracer


def make_contended_run(nprocs=4, rounds=6):
    """All processors hammer one exclusive view."""
    system = VoppSystem(nprocs)
    arr = system.alloc_array("hot", 64, dtype="int64", page_aligned=True)
    tracer = ViewTracer.install(system)

    def body(rt):
        for _ in range(rounds):
            yield from rt.acquire_view(0)
            cur = yield from arr.read(rt, 0, 1)
            yield from arr.write(rt, 0, [cur[0] + 1])
            yield from rt.compute(0.002)  # hold the view: builds contention
            yield from rt.release_view(0)
        yield from rt.barrier()

    system.run_program(body)
    return system, tracer


def test_tracer_records_acquires_and_grants():
    system, tracer = make_contended_run()
    profile = tracer.profiles[0]
    assert profile.excl_acquires == 4 * 6
    assert profile.r_acquires == 0
    assert profile.grants == 4 * 6
    assert profile.wait_sum > 0
    assert profile.wait_max >= profile.wait_avg


def test_tracer_flags_contention():
    system, tracer = make_contended_run()
    text = tracer.report()
    assert "view 0" in text
    advice = " ".join(tracer.advice())
    assert "§3.6" in advice or "§3.4" in advice
    assert "view 0" in advice


def test_tracer_quiet_run_gives_no_advice():
    system = VoppSystem(2)
    arr = system.alloc_array("cold", 4, dtype="int64", page_aligned=True)
    tracer = ViewTracer.install(system)

    def body(rt):
        if rt.rank == 0:
            yield from rt.acquire_view(0)
            yield from arr.write(rt, 0, [1])
            yield from rt.release_view(0)
        yield from rt.barrier()

    system.run_program(body)
    assert tracer.advice() == ["no contended or oversized views detected"]


def test_tracer_distinguishes_read_acquires():
    system = VoppSystem(3)
    arr = system.alloc_array("shared", 8, dtype="int64", page_aligned=True)
    tracer = ViewTracer.install(system)

    def body(rt):
        if rt.rank == 0:
            yield from rt.acquire_view(0)
            yield from arr.write(rt, 0, list(range(8)))
            yield from rt.release_view(0)
        yield from rt.barrier()
        yield from rt.acquire_Rview(0)
        yield from arr.read(rt)
        yield from rt.release_Rview(0)
        yield from rt.barrier()

    system.run_program(body)
    profile = tracer.profiles[0]
    assert profile.excl_acquires == 1
    assert profile.r_acquires == 3


def test_tracer_flags_oversized_views():
    """A view that moves a lot of data per grant draws §3.6 advice."""
    system = VoppSystem(2)
    # 64 KB view, fully rewritten every round
    arr = system.alloc_array("big", 8192, dtype="int64", page_aligned=True)
    tracer = ViewTracer.install(system)

    def body(rt):
        for k in range(3):
            yield from rt.acquire_view(0)
            yield from arr.write(rt, 0, np.full(8192, rt.rank * 10 + k, dtype=np.int64))
            yield from rt.release_view(0)
        yield from rt.barrier()

    system.run_program(body)
    advice = " ".join(tracer.advice())
    assert "KB" in advice and "partition" in advice


def test_advice_wait_flag_threshold():
    """Mean exclusive wait just above WAIT_FLAG_SECONDS trips the flag."""
    from repro.tools.tracer import WAIT_FLAG_SECONDS

    def advice_for(wait):
        tracer = ViewTracer()
        # one read acquire keeps this off the read-mostly-conversion branch
        tracer.record(kind="acquire", view=0, mode="r", wait=wait, t=0.0)
        for _ in range(3):
            tracer.record(kind="acquire", view=0, mode="w", wait=wait, t=0.0)
        return " ".join(tracer.advice())

    assert "splitting" in advice_for(WAIT_FLAG_SECONDS * 2)
    assert advice_for(WAIT_FLAG_SECONDS / 2) == (
        "no contended or oversized views detected"
    )


def test_advice_bytes_flag_threshold():
    """Mean grant payload above BYTES_FLAG flags the view as oversized."""
    from repro.tools.tracer import BYTES_FLAG

    def advice_for(size):
        tracer = ViewTracer()
        tracer.record(kind="grant", view=7, size=size, t=0.0)
        return " ".join(tracer.advice())

    assert "partition" in advice_for(BYTES_FLAG * 2)
    assert advice_for(BYTES_FLAG // 2) == "no contended or oversized views detected"


def test_advice_read_mostly_conversion():
    """Contended exclusive-only views get the acquire_Rview suggestion."""
    from repro.tools.tracer import READ_MOSTLY_RATIO, WAIT_FLAG_SECONDS

    tracer = ViewTracer()
    for _ in range(READ_MOSTLY_RATIO):
        tracer.record(
            kind="acquire", view=2, mode="w", wait=WAIT_FLAG_SECONDS * 3, t=0.0
        )
    advice = " ".join(tracer.advice())
    assert "acquire_Rview" in advice and "§3.4" in advice


def test_view_tracer_deterministic_across_runs():
    """Two identical runs record identical event streams and reports."""
    _, t1 = make_contended_run()
    _, t2 = make_contended_run()
    assert t1.events == t2.events
    assert t1.report() == t2.report()
    assert t1.advice() == t2.advice()


def test_no_tracer_means_no_overhead_path():
    """Without an installed tracer, runs behave identically."""
    def run(with_tracer):
        system = VoppSystem(2)
        arr = system.alloc_array("a", 4, dtype="int64", page_aligned=True)
        if with_tracer:
            ViewTracer.install(system)

        def body(rt):
            yield from rt.acquire_view(0)
            yield from arr.write(rt, rt.rank, [rt.rank])
            yield from rt.release_view(0)
            yield from rt.barrier()

        system.run_program(body)
        return system.stats.table_row()

    assert run(False) == run(True)
