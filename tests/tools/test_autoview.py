"""Tests for the access recorder and view inference (paper §6)."""

import numpy as np
import pytest

from repro.apps import is_sort
from repro.core import TraditionalSystem
from repro.tools import AccessRecorder, infer_views


def record_run(body_builder, nprocs=4):
    system = TraditionalSystem(nprocs)
    body = body_builder(system)
    recorder = AccessRecorder.install(system)
    system.run_program(body)
    return system, recorder


def test_recorder_tracks_readers_and_writers():
    def build(system):
        arr = system.alloc_array("slots", (4, 512), dtype="int64")

        def body(rt):
            yield from arr.write_row(rt, rt.rank, np.full(512, rt.rank))
            yield from rt.barrier()
            if rt.rank == 0:
                yield from arr.read_all(rt)
            yield from rt.barrier()

        return body

    system, recorder = record_run(build)
    # every slot page was written by its owner and read by rank 0
    arr = system.arrays["slots"]
    own_pages = set(arr.region.page_range(system.dsm.space.page_size))
    assert own_pages <= set(recorder.pages)
    all_readers = set()
    for pid in own_pages:
        all_readers |= recorder.pages[pid].readers
    assert 0 in all_readers


def test_epochs_separate_write_phases():
    """Writers in different epochs are not 'concurrent'."""

    def build(system):
        arr = system.alloc_array("x", 64, dtype="int64")

        def body(rt):
            if rt.rank == 0:
                yield from arr.write(rt, 0, [1])
            yield from rt.barrier()
            if rt.rank == 1:
                yield from arr.write(rt, 0, [2])
            yield from rt.barrier()

        return body

    system, recorder = record_run(build, nprocs=2)
    pid = system.arrays["x"].region.page_range(system.dsm.space.page_size)[0]
    use = recorder.pages[pid]
    assert use.writers == {0, 1}
    assert not use.concurrent_writers


def test_concurrent_writers_detected():
    def build(system):
        arr = system.alloc_array("x", 64, dtype="int64")  # one page

        def body(rt):
            yield from arr.write(rt, rt.rank, [rt.rank])
            yield from rt.barrier()

        return body

    system, recorder = record_run(build, nprocs=3)
    pid = system.arrays["x"].region.page_range(system.dsm.space.page_size)[0]
    assert recorder.pages[pid].concurrent_writers


def test_infer_views_groups_by_signature():
    def build(system):
        system.alloc_array("mine", 512, dtype="int64")  # rank 0 private
        system.alloc_array("bcast", 512, dtype="int64", page_aligned=True)

        def body(rt):
            mine = system.arrays["mine"]
            bcast = system.arrays["bcast"]
            if rt.rank == 0:
                yield from mine.write(rt, 0, np.arange(512))
                yield from bcast.write(rt, 0, np.arange(512))
            yield from rt.barrier()
            yield from bcast.read(rt)  # everyone reads the broadcast
            yield from rt.barrier()

        return body

    system, recorder = record_run(build, nprocs=3)
    plan = infer_views(recorder, system.dsm.space, 3)
    report = plan.report()
    assert "Inferred view plan" in report
    # the broadcast pages form a single-writer multi-reader group
    bcast_views = [v for v in plan.views if "bcast" in v.regions]
    assert bcast_views
    view = bcast_views[0]
    assert view.writers == (0,)
    assert set(view.readers) == {0, 1, 2}
    assert "acquire_Rview" in view.primitive
    assert "§3.4" in view.advice


def test_read_only_data_advice():
    def build(system):
        system.alloc_array("table", 512, dtype="int64", page_aligned=True)

        def body(rt):
            # nobody writes: purely read-only data (pretend it was
            # pre-initialised outside the program)
            yield from system.arrays["table"].read(rt, 0, 4)
            yield from rt.barrier()

        return body

    system, recorder = record_run(build, nprocs=2)
    plan = infer_views(recorder, system.dsm.space, 2)
    table_views = [v for v in plan.views if "table" in v.regions]
    assert table_views
    assert not table_views[0].writers
    assert "read-only" in table_views[0].advice


def test_plan_on_real_traditional_is():
    """End-to-end: record the traditional IS run, infer a plan."""
    cfg = is_sort.IsConfig(n_keys=1200, b_max=64, reps=2, bucket_views=4, work_factor=1.0)
    system = TraditionalSystem(4)
    body = is_sort.build(system, cfg)
    recorder = AccessRecorder.install(system)
    system.run_program(body)
    plan = infer_views(recorder, system.dsm.space, 4)
    report = plan.report()
    # the known structure of IS must be visible in the plan:
    regions_mentioned = {r for v in plan.views for r in v.regions}
    assert "keys" in regions_mentioned
    assert "prefix" in regions_mentioned
    # keys: written once by rank 0, read by all -> Rview advice appears
    assert "acquire_Rview" in report
