"""Tests for the parallel sweep engine and its result cache."""

import dataclasses
import json

import numpy as np
import pytest

from repro.bench import sweep as sweep_mod
from repro.bench.sweep import (
    DEFAULT_OUTPUT,
    ResultCache,
    SweepCell,
    cell_key,
    code_fingerprint,
    default_cells,
    run_sweep,
    write_report,
)

# small cells: seconds for the whole module, not minutes
CELLS = [
    SweepCell(app="sor", protocol="vc_sd", nprocs=2),
    SweepCell(app="sor", protocol="lrc_d", nprocs=2),
    SweepCell(app="is", protocol="vc_sd", nprocs=2),
    SweepCell(app="is", protocol="vc_d", nprocs=2),
]


def rows(report):
    return [c.result.table_row() for c in report.cells]


# -- cache keying ----------------------------------------------------------------


def test_key_is_stable_for_same_cell():
    cell = SweepCell(app="sor", protocol="vc_sd", nprocs=2)
    assert cell_key(cell) == cell_key(SweepCell(app="sor", protocol="vc_sd", nprocs=2))


def test_key_changes_with_seed_and_cell_fields():
    base = SweepCell(app="sor", protocol="vc_sd", nprocs=2)
    variants = [
        SweepCell(app="sor", protocol="vc_sd", nprocs=2, seed=99),
        SweepCell(app="sor", protocol="lrc_d", nprocs=2),
        SweepCell(app="sor", protocol="vc_sd", nprocs=4),
        SweepCell(app="is", protocol="vc_sd", nprocs=2),
        SweepCell(app="is", protocol="vc_sd", nprocs=2, variant="lb"),
    ]
    keys = {cell_key(base), *(cell_key(v) for v in variants)}
    assert len(keys) == len(variants) + 1  # all distinct


def test_key_changes_with_config(monkeypatch):
    cell = SweepCell(app="sor", protocol="vc_sd", nprocs=2)
    before = cell_key(cell)
    orig = sweep_mod.APPS["sor"].default_config

    def tweaked():
        return dataclasses.replace(orig(), work_factor=orig().work_factor * 2)

    monkeypatch.setattr(sweep_mod.APPS["sor"], "default_config", tweaked)
    assert cell_key(cell) != before


def test_key_changes_with_code_fingerprint():
    cell = SweepCell(app="sor", protocol="vc_sd", nprocs=2)
    assert cell_key(cell, "aaa") != cell_key(cell, "bbb")
    # and the real fingerprint is a function of the source tree, not the call
    assert code_fingerprint() == code_fingerprint()


# -- cache behaviour -------------------------------------------------------------


def test_cache_hit_skips_execution_and_returns_identical_result(tmp_path, monkeypatch):
    cache_dir = str(tmp_path / "cache")
    cell = SweepCell(app="sor", protocol="vc_sd", nprocs=2)

    cold = run_sweep([cell], jobs=1, cache_dir=cache_dir)
    assert [c.cache_hit for c in cold.cells] == [False]

    def boom(*a, **kw):  # a second execution would be a cache miss -> fail loudly
        raise AssertionError("cell re-executed despite warm cache")

    monkeypatch.setattr(sweep_mod, "_execute_cell", boom)
    warm = run_sweep([cell], jobs=1, cache_dir=cache_dir)
    assert [c.cache_hit for c in warm.cells] == [True]
    assert rows(warm) == rows(cold)
    assert warm.cells[0].fingerprint() == cold.cells[0].fingerprint()
    np.testing.assert_array_equal(
        np.asarray(warm.cells[0].result.output), np.asarray(cold.cells[0].result.output)
    )


def test_seed_change_invalidates(tmp_path):
    cache_dir = str(tmp_path / "cache")
    run_sweep([SweepCell(app="sor", protocol="vc_sd", nprocs=2)], cache_dir=cache_dir)
    again = run_sweep(
        [SweepCell(app="sor", protocol="vc_sd", nprocs=2, seed=1234)],
        cache_dir=cache_dir,
    )
    assert [c.cache_hit for c in again.cells] == [False]


def test_code_fingerprint_change_invalidates(tmp_path, monkeypatch):
    cache_dir = str(tmp_path / "cache")
    cell = SweepCell(app="sor", protocol="vc_sd", nprocs=2)
    run_sweep([cell], cache_dir=cache_dir)
    monkeypatch.setattr(sweep_mod, "code_fingerprint", lambda refresh=False: "deadbeef")
    again = run_sweep([cell], cache_dir=cache_dir)
    assert [c.cache_hit for c in again.cells] == [False]


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    cache = ResultCache(str(tmp_path))
    key = "ab" + "0" * 62
    path = tmp_path / "ab" / (key + ".pkl")
    path.parent.mkdir(parents=True)
    path.write_bytes(b"not a pickle")
    assert cache.get(key) is None


# -- parallel == serial ----------------------------------------------------------


def test_parallel_sweep_bit_identical_to_serial():
    serial = run_sweep(CELLS, jobs=1, cache_dir=None)
    parallel = run_sweep(CELLS, jobs=2, cache_dir=None)
    assert rows(serial) == rows(parallel)
    assert [c.fingerprint() for c in serial.cells] == [
        c.fingerprint() for c in parallel.cells
    ]
    assert [c.result.events for c in serial.cells] == [
        c.result.events for c in parallel.cells
    ]
    assert all(not c.cache_hit for c in parallel.cells)


def test_parallel_workers_populate_the_cache(tmp_path):
    cache_dir = str(tmp_path / "cache")
    cold = run_sweep(CELLS[:2], jobs=2, cache_dir=cache_dir)
    assert all(not c.cache_hit for c in cold.cells)
    warm = run_sweep(CELLS[:2], jobs=2, cache_dir=cache_dir)
    assert all(c.cache_hit for c in warm.cells)
    assert rows(warm) == rows(cold)


# -- report schema ---------------------------------------------------------------

REQUIRED_CELL_KEYS = {
    "app", "protocol", "variant", "nprocs", "seed", "wall_seconds", "events",
    "events_per_sec", "peak_rss_kb", "sim_time_seconds", "verified",
    "cache_hit", "fingerprint", "table_row",
}


def check_sweep_schema(parsed: dict) -> None:
    assert parsed["benchmark"] == "sweep"
    assert parsed["jobs"] >= 1
    assert parsed["wall_seconds"] >= 0
    assert parsed["cache_hits"] + parsed["cache_misses"] == len(parsed["cells"])
    assert len(parsed["code_fingerprint"]) == 64
    assert parsed["cells"], "sweep report has no cells"
    for cell in parsed["cells"]:
        assert REQUIRED_CELL_KEYS <= set(cell), cell
        assert cell["events"] > 0
        assert cell["verified"] is True
        assert len(cell["fingerprint"]) == 16
        assert "Time (Sec.)" in cell["table_row"]


def test_report_roundtrip_and_schema(tmp_path):
    report = run_sweep(CELLS[:2], jobs=1, cache_dir=None)
    path = tmp_path / DEFAULT_OUTPUT
    write_report(report, str(path))
    parsed = json.loads(path.read_text())
    check_sweep_schema(parsed)
    assert parsed == report.to_json()


def test_committed_bench_sweep_json_schema():
    """The committed BENCH_sweep.json must parse against the schema."""
    import pathlib

    path = pathlib.Path(__file__).resolve().parents[2] / DEFAULT_OUTPUT
    if not path.exists():
        pytest.skip("no committed BENCH_sweep.json in this checkout")
    check_sweep_schema(json.loads(path.read_text()))


def test_trace_uses_separate_cache_keys():
    cell = SweepCell(app="sor", protocol="vc_sd", nprocs=2)
    assert cell_key(cell, trace=True) != cell_key(cell, trace=False)
    assert cell_key(cell, trace=False) == cell_key(cell)  # untraced keys unchanged


def test_traced_sweep_adds_breakdown_without_changing_rows(tmp_path):
    cells = CELLS[:1]
    plain = run_sweep(cells, jobs=1, cache_dir=None)
    traced = run_sweep(cells, jobs=1, cache_dir=str(tmp_path), trace=True)
    # bit-identical simulated statistics
    assert rows(plain) == rows(traced)
    assert [c.fingerprint() for c in plain.cells] == [
        c.fingerprint() for c in traced.cells
    ]
    breakdown = traced.cells[0].result.breakdown
    assert breakdown is not None
    assert sum(breakdown[0]["percent"].values()) == pytest.approx(100.0)
    cell_json = traced.to_json()["cells"][0]
    assert "breakdown" in cell_json
    assert "breakdown" not in plain.to_json()["cells"][0]
    # the traced entry was cached under the trace key and recalls its breakdown
    recalled = run_sweep(cells, jobs=1, cache_dir=str(tmp_path), trace=True)
    assert recalled.cells[0].cache_hit
    assert recalled.cells[0].result.breakdown == breakdown
    # an untraced sweep over the same cache dir misses (different key space)
    untraced = run_sweep(cells, jobs=1, cache_dir=str(tmp_path), trace=False)
    assert not untraced.cells[0].cache_hit


def test_default_cells_cover_all_apps_and_protocols():
    cells = default_cells()
    assert {c.app for c in cells} == {"is", "gauss", "sor", "nn"}
    assert {"lrc_d", "vc_d", "vc_sd", "mpi"} <= {c.protocol for c in cells}
    assert len(cells) == len(set(cells)), "duplicate cells in default matrix"
