"""Adversarial benchmark report: grid shape, rendering, random-loss join."""

import json

from repro.bench.adversarial import (
    format_adversarial_grid,
    load_random_loss_worst,
    run_adversarial_grid,
    write_adversarial_report,
)


def test_load_random_loss_worst_missing_file(tmp_path):
    assert load_random_loss_worst(str(tmp_path / "nope.json")) == {}


def test_load_random_loss_worst_picks_max_per_protocol(tmp_path):
    report = {
        "grid": [
            {"protocol": "vc_d", "loss_rate": 0.01, "slowdown": 3.0, "time": 9.0},
            {"protocol": "vc_d", "loss_rate": 0.02, "slowdown": 40.0, "time": 120.0},
            {"protocol": "lrc_d", "loss_rate": 0.02, "slowdown": 4.0, "time": 8.0},
            {"protocol": "lrc_d", "loss_rate": 0.05, "slowdown": None,
             "time": None, "failed": True},
        ]
    }
    path = tmp_path / "BENCH_faults.json"
    path.write_text(json.dumps(report))
    worst = load_random_loss_worst(str(path))
    assert worst["vc_d"] == {"slowdown": 40.0, "loss_rate": 0.02, "time": 120.0}
    assert worst["lrc_d"]["slowdown"] == 4.0  # failed cell ignored


def test_run_adversarial_grid_tiny(tmp_path):
    report = run_adversarial_grid(
        app="is", nprocs=4, protocols=("lrc_d",), budget=3, seed=3,
        population=3, shrink=False,
        faults_report=str(tmp_path / "absent.json"),
    )
    assert report["benchmark"] == "faults_adversarial"
    assert report["protocols"] == ["lrc_d"]
    (cell,) = report["grid"]
    assert cell["protocol"] == "lrc_d"
    assert cell["evals"] == 3
    assert cell["best"]["magnitude"] > 1.0
    assert "random_loss_worst" not in cell  # no random grid on disk
    assert "manifest" in report

    rendered = format_adversarial_grid(report)
    assert "lrc_d" in rendered and "protocol" in rendered

    out = tmp_path / "BENCH_adversarial.json"
    write_adversarial_report(report, str(out))
    assert json.loads(out.read_text())["grid"][0]["evals"] == 3


def test_format_grid_handles_abort_and_random_join():
    # fabricated report: abort winner (slowdown None) + random comparison
    report = {
        "app": "is", "nprocs": 8, "budget": 24, "seed": 11,
        "grid": [{
            "protocol": "vc_d",
            "best": {"class": "abort", "magnitude": 2.5, "slowdown": None,
                     "episodes": 2},
            "best_completed": {"slowdown": 17.0},
            "shrunk": {"episodes": 1},
            "random_loss_worst": {"slowdown": 40.433},
        }],
    }
    rendered = format_adversarial_grid(report)
    assert "abort" in rendered
    assert "17.000" in rendered  # falls back to best completed slowdown
    assert "40.433" in rendered
