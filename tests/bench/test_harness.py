"""Tests for the benchmark harness (runners, tables, paper data)."""

import pytest

from repro.apps import is_sort
from repro.bench import (
    Entry,
    format_speedup_table,
    format_stats_table,
    paper_data,
    speedup_experiment,
    stats_experiment,
)

SMALL = is_sort.IsConfig(n_keys=1200, b_max=64, reps=2, bucket_views=4, work_factor=4.0)


def test_stats_experiment_runs_all_protocols():
    results = stats_experiment(is_sort, nprocs=3, config=SMALL)
    assert set(results) == {"LRC_d", "VC_d", "VC_sd"}
    assert all(r.verified for r in results.values())


def test_stats_table_renders_with_paper_refs():
    results = stats_experiment(is_sort, nprocs=2, config=SMALL)
    text = format_stats_table(
        "Test Table", results, paper={"VC_sd": {"Barriers": 40}}
    )
    assert "Test Table" in text
    assert "LRC_d" in text and "VC_sd" in text
    assert "(40)" in text  # the paper reference is shown
    assert "Diff Requests" in text


def test_speedup_experiment_shape():
    entries = (Entry("VC_sd", "vc_sd"),)
    speedups = speedup_experiment(is_sort, entries, proc_counts=(2, 3), config=SMALL)
    assert set(speedups) == {"VC_sd"}
    assert set(speedups["VC_sd"]) == {2, 3}
    assert all(v > 0 for v in speedups["VC_sd"].values())


def test_speedup_table_renders():
    text = format_speedup_table(
        "Speedups",
        {"A": {2: 1.5, 4: 2.5}},
        paper={"A": {4: 3.0}},
    )
    assert "2-p" in text and "4-p" in text
    assert "1.50" in text
    assert "(3.0)" in text


def test_custom_entries_and_variants():
    entries = (Entry("VC_sd lb", "vc_sd", variant="lb"),)
    results = stats_experiment(is_sort, nprocs=2, config=SMALL, entries=entries)
    assert "VC_sd lb" in results
    assert results["VC_sd lb"].verified


def test_paper_data_is_well_formed():
    for table in (
        paper_data.TABLE1_IS_STATS,
        paper_data.TABLE2_IS_LB_STATS,
        paper_data.TABLE6_SOR_STATS,
        paper_data.TABLE8_NN_STATS,
    ):
        for label, rows in table.items():
            assert label in ("LRC_d", "VC_d", "VC_sd")
            for key, value in rows.items():
                assert isinstance(value, (int, float))
    # the qualitative findings cover all nine tables
    assert {f"table{i}" for i in range(1, 10)} == set(paper_data.SHAPE_NOTES)


def test_paper_configs_exist_for_every_app():
    """paper_config() documents the full-size problems."""
    from repro.apps import gauss, nn, sor

    assert is_sort.paper_config().n_keys == 1 << 25
    assert gauss.paper_config().n == 2048
    assert sor.paper_config().rows == 4096
    assert nn.paper_config().epochs == 235
    for cfg in (is_sort.paper_config(), gauss.paper_config(), sor.paper_config(), nn.paper_config()):
        assert cfg.work_factor == 1.0  # full size: no compute rescaling
