"""Tests for the fault-degradation grid (``python -m repro sweep --faults``)."""

import json

import pytest

from repro.bench.degradation import (
    DEFAULT_FAULTS_OUTPUT,
    format_degradation_grid,
    run_degradation_grid,
    write_degradation_report,
)
from repro.faults import Episode, FaultPlan

# small and fast: 2 protocols x 2 rates at 2 processes
KW = dict(
    app="is",
    nprocs=2,
    protocols=("lrc_d", "vc_sd"),
    loss_rates=(0.0, 0.01),
    seed=11,
)


def test_grid_shape_and_cell_schema():
    report = run_degradation_grid(**KW)
    assert report["benchmark"] == "faults_degradation"
    assert len(report["grid"]) == 4
    for cell in report["grid"]:
        assert not cell["failed"]
        assert cell["verified"] is True
        assert cell["time"] > 0
        assert set(cell["injected"]) == {"drop", "duplicate", "reorder"}
    by_proto = {}
    for cell in report["grid"]:
        by_proto.setdefault(cell["protocol"], []).append(cell)
    for cells in by_proto.values():
        assert [c["loss_rate"] for c in cells] == [0.0, 0.01]
        assert cells[0]["slowdown"] == 1.0  # normalised to the rate-0 cell
        assert cells[0]["rexmit"] == 0  # zero loss, zero retransmission
        assert cells[1]["drops_by_cause"].get("fault", 0) > 0


def test_grid_is_deterministic():
    first = run_degradation_grid(**KW)
    again = run_degradation_grid(**KW)
    assert first["grid"] == again["grid"]


def test_base_plan_layers_under_the_loss_sweep():
    base = FaultPlan((Episode(kind="duplicate", dup_prob=0.05),))
    report = run_degradation_grid(base_plan=base, **KW)
    assert report["base_plan"] == base.to_json()
    # the duplication background applies even to the zero-loss cells
    zero_loss = [c for c in report["grid"] if c["loss_rate"] == 0.0]
    assert all(c["injected"]["duplicate"] > 0 for c in zero_loss)
    assert all(c["verified"] for c in report["grid"])


def test_hostile_rate_reports_a_failure_row():
    report = run_degradation_grid(
        app="is",
        nprocs=2,
        protocols=("vc_sd",),
        loss_rates=(0.0, 1.0),  # total blackout: retry budget must exhaust
        seed=11,
    )
    ok, failed = report["grid"]
    assert not ok["failed"]
    assert failed["failed"]
    assert failed["failure"]["reason"] == "retry-exhausted"
    assert failed["failure"]["net"]["drops_by_cause"]["fault"] > 0
    text = format_degradation_grid(report)
    assert "FAILED (retry-exhausted)" in text


def test_report_roundtrip(tmp_path):
    report = run_degradation_grid(**KW)
    path = tmp_path / DEFAULT_FAULTS_OUTPUT
    write_degradation_report(report, str(path))
    assert json.loads(path.read_text()) == json.loads(json.dumps(report))
    text = format_degradation_grid(report)
    assert "Degradation grid" in text
    assert "lrc_d" in text and "vc_sd" in text


def test_rejects_empty_rate_list():
    with pytest.raises(ValueError, match="loss rate"):
        run_degradation_grid(app="is", nprocs=2, loss_rates=())
