"""The common run-manifest block every BENCH writer embeds.

A BENCH file must be self-describing: which host/python/git revision
produced it, a hash of the resolved configuration, and what the run cost.
The manifest never participates in simulated fingerprints (those hash only
``table_row``), so stamping it cannot change committed results.
"""

import json
import os

import pytest

from repro.bench.manifest import MANIFEST_SCHEMA, config_hash, run_manifest

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..", "..")

MANIFEST_KEYS = {
    "schema", "host", "python", "git_rev", "config_hash",
    "wall_seconds", "peak_rss_kb",
}


def test_run_manifest_shape():
    m = run_manifest(config={"a": 1}, wall_seconds=1.23456, peak_rss_kb=777)
    assert set(m) == MANIFEST_KEYS
    assert m["schema"] == MANIFEST_SCHEMA == 1
    assert set(m["host"]) == {"system", "machine", "cpus"}
    assert m["python"].count(".") == 2
    assert m["wall_seconds"] == 1.2346
    assert m["peak_rss_kb"] == 777
    assert len(m["config_hash"]) == 16


def test_run_manifest_fills_rss_and_allows_missing_config():
    m = run_manifest()
    assert m["config_hash"] is None
    assert m["wall_seconds"] is None
    # auto-filled from getrusage on POSIX
    assert m["peak_rss_kb"] is not None and m["peak_rss_kb"] > 0


def test_run_manifest_git_rev_matches_head():
    m = run_manifest()
    if m["git_rev"] is None:
        pytest.skip("not a git checkout")
    assert len(m["git_rev"]) == 40


def test_config_hash_stable_and_sensitive():
    assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})
    assert config_hash({"a": 1}) != config_hash({"a": 2})
    # non-JSON objects hash through repr — just needs to be deterministic
    class Cfg:
        def __repr__(self):
            return "Cfg(n=3)"

    assert config_hash(Cfg()) == config_hash(Cfg())


# -- the live writers stamp it ----------------------------------------------------


def test_sweep_report_carries_manifest():
    from repro.bench.sweep import SweepCell, run_sweep

    report = run_sweep(
        [SweepCell(app="is", protocol="vc_sd", nprocs=2)],
        jobs=1, cache_dir=None, verify=False,
    )
    m = report.manifest
    assert m["schema"] == MANIFEST_SCHEMA
    assert m["config_hash"] is not None  # hashes the cell list
    # to_json returns the document dict; the manifest survives serialisation
    parsed = json.loads(json.dumps(report.to_json()))
    assert parsed["manifest"] == m


def test_degradation_report_carries_manifest():
    from repro.bench.degradation import run_degradation_grid

    report = run_degradation_grid(
        app="is", nprocs=2, protocols=("vc_sd",), loss_rates=(0.0,),
        verify=False,
    )
    m = report["manifest"]
    assert m["schema"] == MANIFEST_SCHEMA
    assert m["wall_seconds"] is not None and m["wall_seconds"] > 0


def test_perf_report_carries_manifest():
    from repro.apps.is_sort import IsConfig
    from repro.bench.perf import STATS_ENTRIES, run_hotpath_benchmark

    config = IsConfig(n_keys=1024, b_max=64, reps=2)
    report = run_hotpath_benchmark(
        nprocs=2, config=config, entries=STATS_ENTRIES[:1], verify=False,
    )
    m = report["manifest"]
    assert m["schema"] == MANIFEST_SCHEMA
    assert m["config_hash"] == config_hash(config)


# -- the committed BENCH files ----------------------------------------------------


@pytest.mark.parametrize(
    "name",
    ["BENCH_hotpath.json", "BENCH_sweep.json", "BENCH_pdes.json",
     "BENCH_faults.json"],
)
def test_committed_bench_files_have_manifests(name):
    path = os.path.join(REPO_ROOT, name)
    if not os.path.exists(path):
        pytest.skip(f"no committed {name} in this checkout")
    with open(path) as fh:
        doc = json.load(fh)
    m = doc.get("manifest")
    assert m is not None, f"{name} lacks the run-manifest block"
    assert m["schema"] == MANIFEST_SCHEMA
    assert set(m) == MANIFEST_KEYS
