"""Smoke test for the wall-clock hot-path harness (repro.bench.perf).

Runs the harness on a tiny IS config (seconds, not minutes) and checks that
the report it would write to BENCH_hotpath.json is well-formed: valid JSON,
all three protocols present, positive counters.
"""

import json

from repro.apps import is_sort
from repro.bench.perf import DEFAULT_OUTPUT, run_hotpath_benchmark, write_report

TINY = is_sort.IsConfig(n_keys=1200, b_max=64, reps=2, bucket_views=4, work_factor=4.0)


def test_hotpath_report_shape(tmp_path):
    report = run_hotpath_benchmark(nprocs=3, config=TINY)

    path = tmp_path / DEFAULT_OUTPUT
    write_report(report, str(path))
    parsed = json.loads(path.read_text())
    assert parsed == report  # JSON round-trip is lossless

    assert report["benchmark"] == "hotpath_is"
    assert report["nprocs"] == 3
    assert set(report["protocols"]) == {"LRC_d", "VC_d", "VC_sd"}
    for label, row in report["protocols"].items():
        assert row["verified"], label
        assert row["events"] > 0
        assert row["wall_seconds"] >= 0
        assert row["events_per_sec"] > 0
        assert row["sim_time_seconds"] > 0
        assert "Num. Msg" in row["table_row"]
        mix = row["message_mix"]
        assert mix["num_msg"] == row["table_row"]["Num. Msg"]
        assert mix["by_kind"], label
        for kind, rec in mix["by_kind"].items():
            assert "." not in kind  # normalised: DIFF_REQUEST, not MessageKind.…
            assert rec["count"] > 0 and rec["bytes"] >= 0
            assert 0 < rec["pct_msgs"] <= 100
            assert 0 <= rec["pct_bytes"] <= 100
        # per-kind counts decompose the total message count exactly
        assert sum(r["count"] for r in mix["by_kind"].values()) == mix["num_msg"]
        counts = [r["count"] for r in mix["by_kind"].values()]
        assert counts == sorted(counts, reverse=True)  # top contributor first
    assert report["events"] == sum(r["events"] for r in report["protocols"].values())
    assert report["events_per_sec"] > 0
    # the named regression metric mirrors the VC_d entry
    assert report["vc_d_events_per_sec"] == report["protocols"]["VC_d"]["events_per_sec"]
    assert report["peak_rss_kb"] > 0


def test_hotpath_report_is_deterministic_modulo_timing():
    """Simulated quantities in the report replay exactly; only wall clock moves."""

    def fingerprint():
        rep = run_hotpath_benchmark(nprocs=3, config=TINY)
        return {
            label: (row["events"], row["sim_time_seconds"], row["table_row"])
            for label, row in rep["protocols"].items()
        }

    assert fingerprint() == fingerprint()
