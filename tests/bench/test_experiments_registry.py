"""Tests for the named-experiment registry (fast paths only — the full
16-processor table runs live in benchmarks/)."""

import pytest

from repro.bench import experiments


def test_registry_covers_all_nine_tables():
    assert set(experiments.TABLES) == set(range(1, 10))
    for fn in experiments.TABLES.values():
        assert callable(fn)


def test_run_table_rejects_unknown():
    with pytest.raises(ValueError, match="tables 1-9"):
        experiments.run_table(10)
    with pytest.raises(ValueError):
        experiments.run_table(0)


def test_stats_table_runs_at_small_scale():
    """The table drivers accept processor-count overrides (smoke test)."""
    text = experiments.table1(nprocs=2)
    assert "Table 1" in text
    assert "LRC_d" in text and "VC_sd" in text


def test_speedup_table_runs_at_small_scale():
    text = experiments.table5(proc_counts=(2,))
    assert "Table 5" in text
    assert "2-p" in text
