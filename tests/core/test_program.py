"""Tests for the system facades, runtimes and the program runner."""

import pytest

from repro.core import (
    TraditionalSystem,
    VoppSystem,
    make_system,
)
from repro.core.vopp import TraditionalRuntime, VoppRuntime


def test_make_system_dispatch():
    assert isinstance(make_system(2, "lrc_d"), TraditionalSystem)
    assert isinstance(make_system(2, "vc_d"), VoppSystem)
    assert isinstance(make_system(2, "vc_sd"), VoppSystem)


def test_protocol_restrictions():
    with pytest.raises(ValueError):
        VoppSystem(2, protocol="lrc_d")
    with pytest.raises(ValueError):
        TraditionalSystem(2, protocol="vc_sd")


def test_runtime_type_checks():
    vopp = VoppSystem(1)
    with pytest.raises(TypeError):
        TraditionalRuntime(vopp, 0)
    trad = TraditionalSystem(1)
    with pytest.raises(TypeError):
        VoppRuntime(trad, 0)


def test_run_program_returns_results_in_rank_order():
    system = VoppSystem(4)

    def body(rt):
        yield from rt.barrier()
        return rt.rank * 2

    assert system.run_program(body) == [0, 2, 4, 6]
    assert system.stats.time > 0


def test_run_program_with_extra_args():
    system = VoppSystem(2)

    def body(rt, offset, scale=1):
        yield from rt.barrier()
        return (rt.rank + offset) * scale

    assert system.run_program(body, 10, scale=3) == [30, 33]


def test_deadlock_reported_as_stuck_workers():
    system = VoppSystem(2)

    def body(rt):
        if rt.rank == 0:
            yield from rt.barrier()  # rank 1 never arrives -> deadlock
        return None

    with pytest.raises(RuntimeError, match="never finished"):
        system.run_program(body)


def test_worker_exception_surfaces():
    system = VoppSystem(2)

    def body(rt):
        yield from rt.barrier()
        if rt.rank == 1:
            raise ValueError("app bug")

    with pytest.raises(Exception):
        system.run_program(body)


def test_merge_views_updates_everything():
    system = VoppSystem(3, page_size=256)
    a = system.alloc_array("a", 4, dtype="int64", page_aligned=True)
    b = system.alloc_array("b", 4, dtype="int64", page_aligned=True)

    def body(rt):
        if rt.rank == 0:
            yield from rt.acquire_view(0)
            yield from a.write(rt, 0, [1, 2, 3, 4])
            yield from rt.release_view(0)
        if rt.rank == 1:
            yield from rt.acquire_view(1)
            yield from b.write(rt, 0, [5, 6, 7, 8])
            yield from rt.release_view(1)
        yield from rt.barrier()
        yield from rt.merge_views()
        # after merge_views every node can read both views (read-only reads
        # still require holding the views per VOPP, so re-acquire)
        yield from rt.acquire_Rview(0)
        yield from rt.acquire_Rview(1)
        va = yield from a.read(rt)
        vb = yield from b.read(rt)
        yield from rt.release_Rview(1)
        yield from rt.release_Rview(0)
        yield from rt.barrier()
        return list(va) + list(vb)

    results = system.run_program(body)
    for r in results:
        assert r == [1, 2, 3, 4, 5, 6, 7, 8]


def test_compute_charges_time():
    system = VoppSystem(1)

    def body(rt):
        t0 = rt.now
        yield from rt.compute(2.0)
        return rt.now - t0

    assert system.run_program(body) == [2.0]


def test_stats_time_measures_parallel_section():
    system = VoppSystem(2)

    def body(rt):
        yield from rt.compute(1.0)
        yield from rt.barrier()

    system.run_program(body)
    assert system.stats.time >= 1.0
