"""Unit tests for SharedArray over a live VOPP system."""

import numpy as np
import pytest

from repro.core import VoppSystem


def run_on_one(system, gen_fn):
    """Run a single-rank program; return its result."""
    return system.run_program(gen_fn)[0]


def test_roundtrip_1d():
    system = VoppSystem(1, page_size=256)
    arr = system.alloc_array("a", 10, dtype="int64", page_aligned=True)

    def body(rt):
        yield from rt.acquire_view(0)
        yield from arr.write(rt, 0, np.arange(10))
        out = yield from arr.read(rt, 0, 10)
        yield from rt.release_view(0)
        return list(out)

    assert run_on_one(system, body) == list(range(10))


def test_partial_read_write():
    system = VoppSystem(1, page_size=256)
    arr = system.alloc_array("a", 10, dtype="int32", page_aligned=True)

    def body(rt):
        yield from rt.acquire_view(0)
        yield from arr.write(rt, 3, [7, 8, 9])
        out = yield from arr.read(rt, 2, 5)
        yield from rt.release_view(0)
        return list(out)

    assert run_on_one(system, body) == [0, 7, 8, 9, 0]


def test_2d_rows():
    system = VoppSystem(1, page_size=256)
    arr = system.alloc_array("m", (4, 5), dtype="float64", page_aligned=True)

    def body(rt):
        yield from rt.acquire_view(0)
        yield from arr.write_row(rt, 2, [1.5] * 5)
        row = yield from arr.read_row(rt, 2)
        full = yield from arr.read_all(rt)
        yield from rt.release_view(0)
        return row, full

    row, full = run_on_one(system, body)
    assert list(row) == [1.5] * 5
    assert full.shape == (4, 5)
    assert full[2].tolist() == [1.5] * 5
    assert full[0].tolist() == [0.0] * 5


def test_write_all_shape_check():
    system = VoppSystem(1)
    arr = system.alloc_array("m", (2, 3), dtype="int16", page_aligned=True)

    def body(rt):
        yield from rt.acquire_view(0)
        with pytest.raises(ValueError):
            yield from arr.write_all(rt, np.zeros((3, 2), dtype="int16"))
        yield from arr.write_all(rt, np.ones((2, 3), dtype="int16"))
        out = yield from arr.read_all(rt)
        yield from rt.release_view(0)
        return out

    out = system.run_program(body)[0]
    assert out.tolist() == [[1, 1, 1], [1, 1, 1]]


def test_bounds_checks():
    system = VoppSystem(1)
    arr = system.alloc_array("a", 4, dtype="int64", page_aligned=True)

    def body(rt):
        yield from rt.acquire_view(0)
        with pytest.raises(IndexError):
            yield from arr.read(rt, 3, 5)
        with pytest.raises(IndexError):
            yield from arr.write(rt, -1, [0])
        with pytest.raises(IndexError):
            arr.row_span(0)  # not 2-D -> ValueError actually
        yield from rt.release_view(0)

    # row_span on 1-D raises ValueError, adjust inside:
    def body2(rt):
        yield from rt.acquire_view(0)
        with pytest.raises(IndexError):
            yield from arr.read(rt, 3, 5)
        with pytest.raises(ValueError):
            arr.row_span(0)
        yield from rt.release_view(0)

    system.run_program(body2)


def test_read_returns_unaliased_copy():
    """read() must hand back the page bytes without aliasing page memory.

    Guards the single-copy fast path (``raw.view(dtype)`` instead of the old
    ``tobytes()``+``frombuffer`` double copy): mutating the returned array
    must not leak into the DSM pages, and a later read must be unaffected.
    """
    system = VoppSystem(1, page_size=256)
    arr = system.alloc_array("a", 8, dtype="int64", page_aligned=True)
    values = [3, 1, 4, 1, 5, 9, 2, 6]

    def body(rt):
        yield from rt.acquire_view(0)
        yield from arr.write(rt, 0, values)
        first = yield from arr.read(rt, 0, 8)
        first[:] = -1  # scribble over the returned buffer
        second = yield from arr.read(rt, 0, 8)
        yield from rt.release_view(0)
        return first, second

    first, second = run_on_one(system, body)
    assert first.dtype == np.int64 and second.dtype == np.int64
    assert first.tolist() == [-1] * 8
    assert second.tolist() == values  # pages untouched by the scribble


def test_region_size_mismatch_rejected():
    from repro.core.shared_array import SharedArray
    from repro.memory.address_space import Region

    with pytest.raises(ValueError):
        SharedArray(Region("x", 0, 100), (10,), np.dtype("float64"))


def test_dtype_preserved_across_nodes():
    system = VoppSystem(2, page_size=256)
    arr = system.alloc_array("a", 6, dtype="float32", page_aligned=True)

    def body(rt):
        if rt.rank == 0:
            yield from rt.acquire_view(0)
            yield from arr.write(rt, 0, [0.5, 1.5, 2.5, 3.5, 4.5, 5.5])
            yield from rt.release_view(0)
        yield from rt.barrier()
        yield from rt.acquire_Rview(0)
        out = yield from arr.read(rt, 0, 6)
        yield from rt.release_Rview(0)
        yield from rt.barrier()
        return out

    results = system.run_program(body)
    for out in results:
        assert out.dtype == np.float32
        assert out.tolist() == [0.5, 1.5, 2.5, 3.5, 4.5, 5.5]
