"""Tests for the simulated MPI library."""

import numpy as np
import pytest

from repro.mpi import MpiSystem


@pytest.mark.parametrize("n", [2, 3, 4, 7, 8])
def test_send_recv_ring(n):
    system = MpiSystem(n)

    def body(comm):
        data = np.array([comm.rank], dtype=np.int64)
        dest = (comm.rank + 1) % comm.size
        src = (comm.rank - 1) % comm.size
        yield from comm.send(data, dest, tag=1)
        got = yield from comm.recv(src, tag=1)
        return int(got[0])

    results = system.run_program(body)
    assert results == [(r - 1) % n for r in range(n)]


def test_tag_matching():
    system = MpiSystem(2)

    def body(comm):
        if comm.rank == 0:
            yield from comm.send(np.array([1]), 1, tag=10)
            yield from comm.send(np.array([2]), 1, tag=20)
            return None
        # receive out of order by tag
        b = yield from comm.recv(0, tag=20)
        a = yield from comm.recv(0, tag=10)
        return (int(a[0]), int(b[0]))

    assert system.run_program(body)[1] == (1, 2)


@pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
def test_bcast(n):
    system = MpiSystem(n)

    def body(comm):
        data = np.arange(10) if comm.rank == 0 else None
        data = yield from comm.bcast(data, root=0)
        return list(data)

    for r in system.run_program(body):
        assert r == list(range(10))


@pytest.mark.parametrize("root", [0, 2])
def test_bcast_nonzero_root(root):
    system = MpiSystem(4)

    def body(comm):
        data = np.array([99]) if comm.rank == root else None
        data = yield from comm.bcast(data, root=root)
        return int(data[0])

    assert system.run_program(body) == [99] * 4


@pytest.mark.parametrize("n", [1, 2, 4, 6])
def test_reduce_sum(n):
    system = MpiSystem(n)

    def body(comm):
        data = np.full(3, comm.rank + 1, dtype=np.int64)
        result = yield from comm.reduce(data, op=np.add, root=0)
        return None if result is None else list(result)

    results = system.run_program(body)
    total = sum(range(1, n + 1))
    assert results[0] == [total] * 3
    assert all(r is None for r in results[1:])


@pytest.mark.parametrize("n", [1, 2, 3, 8])
def test_allreduce(n):
    system = MpiSystem(n)

    def body(comm):
        data = np.array([comm.rank], dtype=np.int64)
        result = yield from comm.allreduce(data, op=np.add)
        return int(result[0])

    assert system.run_program(body) == [sum(range(n))] * n


def test_reduce_max():
    system = MpiSystem(5)

    def body(comm):
        data = np.array([comm.rank * 7 % 5], dtype=np.int64)
        result = yield from comm.allreduce(data, op=np.maximum)
        return int(result[0])

    expected = max(r * 7 % 5 for r in range(5))
    assert system.run_program(body) == [expected] * 5


def test_gather_and_allgather():
    system = MpiSystem(4)

    def body(comm):
        data = np.array([comm.rank * 10], dtype=np.int64)
        gathered = yield from comm.gather(data, root=0)
        everyone = yield from comm.allgather(data)
        g = None if gathered is None else [int(x[0]) for x in gathered]
        return (g, [int(x[0]) for x in everyone])

    results = system.run_program(body)
    assert results[0][0] == [0, 10, 20, 30]
    for g, e in results[1:]:
        assert g is None
    for _, e in results:
        assert e == [0, 10, 20, 30]


def test_scatter():
    system = MpiSystem(3)

    def body(comm):
        chunks = None
        if comm.rank == 0:
            chunks = [np.array([i * 5]) for i in range(3)]
        mine = yield from comm.scatter(chunks, root=0)
        return int(mine[0])

    assert system.run_program(body) == [0, 5, 10]


def test_barrier_synchronises():
    system = MpiSystem(3)
    exits = {}

    def body(comm):
        yield from comm.compute(comm.rank * 1.0)  # staggered arrivals
        yield from comm.barrier()
        exits[comm.rank] = comm.node.sim.now

    system.run_program(body)
    # nobody exits before the slowest arrival
    assert min(exits.values()) >= 2.0


def test_self_send_rejected():
    system = MpiSystem(2)

    def body(comm):
        if comm.rank == 0:
            with pytest.raises(ValueError):
                yield from comm.send(np.zeros(1), 0)
        yield from comm.barrier()

    system.run_program(body)


def test_unsizeable_payload_rejected():
    system = MpiSystem(2)

    def body(comm):
        if comm.rank == 0:
            with pytest.raises(TypeError):
                yield from comm.send({"a": 1}, 1)
            yield from comm.send({"a": 1}, 1, size=64)  # explicit size is fine
            return None
        got = yield from comm.recv(0)
        return got

    assert system.run_program(body)[1] == {"a": 1}


def test_message_bytes_accounted():
    system = MpiSystem(2)

    def body(comm):
        if comm.rank == 0:
            yield from comm.send(np.zeros(1000, dtype=np.float64), 1)
            return None
        return (yield from comm.recv(0))

    system.run_program(body)
    assert system.stats.data_bytes == 8000 + 16  # payload + MPI header
