"""Documentation consistency: the docs reference things that exist."""

import re
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]


def test_required_documents_exist():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "LICENSE",
                 "docs/protocols.md", "docs/simulator.md",
                 "docs/observability.md", "docs/robustness.md"):
        assert (REPO / name).is_file(), name


def test_design_md_maps_every_table_to_an_existing_bench():
    text = (REPO / "DESIGN.md").read_text()
    benches = set(re.findall(r"benchmarks/(bench_\w+\.py)", text))
    assert len(benches) >= 9
    for bench in benches:
        assert (REPO / "benchmarks" / bench).is_file(), bench


def test_readme_bench_table_matches_files():
    text = (REPO / "README.md").read_text()
    for i in range(1, 10):
        assert f"bench_table{i}" in text, f"table {i} missing from README"
    for bench in re.findall(r"benchmarks/(bench_\w+\.py)", text):
        assert (REPO / "benchmarks" / bench).is_file(), bench


def test_every_paper_table_has_a_bench_file():
    names = {p.name for p in (REPO / "benchmarks").glob("bench_table*.py")}
    for i in range(1, 10):
        assert any(f"table{i}_" in n for n in names), f"no bench for table {i}"


def test_examples_referenced_in_readme_exist():
    text = (REPO / "README.md").read_text()
    for name in re.findall(r"(\w+\.py)", text):
        candidate = REPO / "examples" / name
        if "examples/" + name in text or name in (
            "quickstart.py",
            "protocol_comparison.py",
            "stencil_border_views.py",
            "vopp_vs_mpi.py",
            "view_tuning.py",
            "auto_views.py",
        ):
            assert candidate.is_file() or not name.startswith("example"), name
    for example in (REPO / "examples").glob("*.py"):
        assert example.name in text, f"{example.name} not mentioned in README"


def test_experiments_md_covers_all_tables_and_ablations():
    text = (REPO / "EXPERIMENTS.md").read_text()
    for i in range(1, 10):
        assert f"Table {i} " in text or f"Table {i} —" in text, i
    for ablation in (REPO / "benchmarks").glob("bench_ablation_*.py"):
        assert ablation.name in text, f"{ablation.name} not recorded in EXPERIMENTS.md"


def test_every_public_module_has_a_docstring():
    import importlib

    for module in (
        "repro", "repro.sim", "repro.net", "repro.memory", "repro.protocols",
        "repro.core", "repro.mpi", "repro.apps", "repro.bench", "repro.tools",
        "repro.cli", "repro.obs",
        "repro.sim.engine", "repro.net.transport", "repro.memory.diff",
        "repro.protocols.lrc", "repro.protocols.hlrc", "repro.protocols.vc",
        "repro.protocols.vc_sd", "repro.core.vopp", "repro.core.shared_array",
        "repro.tools.tracer", "repro.tools.autoview",
        "repro.obs.tracer", "repro.obs.breakdown", "repro.obs.export",
        "repro.faults", "repro.faults.plan", "repro.faults.injector",
        "repro.faults.failure", "repro.bench.degradation",
    ):
        mod = importlib.import_module(module)
        assert mod.__doc__ and len(mod.__doc__.strip()) > 20, module
