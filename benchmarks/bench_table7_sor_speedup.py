"""Table 7 — Speedup of SOR on LRC_d and VC_sd (2..32 processors).

Paper finding: "the speedups of the VOPP program running on VC_sd is greatly
improved compared with the original program running on LRC_d."
"""

from repro.apps import sor
from repro.bench import format_speedup_table, speedup_experiment
from repro.bench.runner import Entry, PAPER_PROC_COUNTS
from benchmarks.conftest import attach, run_once

ENTRIES = (
    Entry("LRC_d", "lrc_d"),
    Entry("VC_sd", "vc_sd"),
)


def test_table7_sor_speedup(benchmark):
    speedups = run_once(
        benchmark, lambda: speedup_experiment(sor, ENTRIES, PAPER_PROC_COUNTS)
    )
    table = format_speedup_table("Table 7: Speedup of SOR on LRC_d and VC_sd", speedups)
    attach(benchmark, table, {f"{k}@{p}": v for k, row in speedups.items() for p, v in row.items()})

    lrc, sd = speedups["LRC_d"], speedups["VC_sd"]
    # at 2 processors both protocols are near-ideal (parity allowed); from 4
    # processors on, VC_sd must win outright
    assert sd[2] > 0.9 * lrc[2]
    for p in PAPER_PROC_COUNTS[1:]:
        assert sd[p] > lrc[p], f"VC_sd must beat LRC_d at {p}p"
    # the gap widens with the processor count
    assert sd[32] / lrc[32] > sd[2] / lrc[2]
