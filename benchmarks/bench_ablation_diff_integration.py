"""Ablation 2 (DESIGN.md §5) — diff integration in VC_sd.

With integration disabled, each release ships its raw per-interval diffs and
grants carry one diff per missed release instead of a single merged diff, so
the data volume climbs back toward VC_d's.  IS — whose bucket views are
rewritten whole by every holder — shows the effect most clearly.
"""

from repro.apps import is_sort
from repro.apps.common import run_app
from benchmarks.conftest import attach, run_once

NPROCS = 16


def _run(integration: bool):
    from repro.core.program import make_system

    system = make_system(NPROCS, "vc_sd")
    for proto in system.dsm.protocols:
        proto.integration_enabled = integration
    config = is_sort.default_config()
    body = is_sort.build(system, config)
    system.run_program(body)
    out = is_sort.extract(system, config)
    assert is_sort.outputs_match(out, is_sort.sequential(config))
    return system.stats


def test_ablation_diff_integration(benchmark):
    def experiment():
        return _run(True), _run(False)

    with_int, without_int = run_once(benchmark, experiment)
    table = (
        "Ablation: diff integration (IS, VC_sd, 16p)\n"
        f"  integration on : data {with_int.net.data_bytes/1e6:8.3f} MB, "
        f"msgs {with_int.net.num_msg:,}, time {with_int.time:.3f} s\n"
        f"  integration off: data {without_int.net.data_bytes/1e6:8.3f} MB, "
        f"msgs {without_int.net.num_msg:,}, time {without_int.time:.3f} s"
    )
    attach(benchmark, table, {"data_on": with_int.net.data_bytes, "data_off": without_int.net.data_bytes})

    # integration strictly reduces grant data
    assert with_int.net.data_bytes < without_int.net.data_bytes
    assert with_int.time <= without_int.time * 1.05
    # neither variant falls back to diff requests
    assert with_int.diff_requests == without_int.diff_requests == 0
