"""Table 1 — Statistics of IS on 16 processors (LRC_d / VC_d / VC_sd).

Paper findings this bench asserts:

* VC_d sends *more* messages and data than LRC_d, yet runs *faster* — the
  consistency work moved from the centralised barrier into distributed view
  primitives;
* LRC_d's mean barrier time is several times VC_d's;
* LRC_d retransmits far more than the VC systems (centralised bursts);
* VC_sd needs no diff requests and the fewest messages of the VC systems.
"""

from repro.apps import is_sort
from repro.bench import paper_data, stats_experiment, format_stats_table
from benchmarks.conftest import attach, run_once

NPROCS = 16


def test_table1_is_stats(benchmark):
    results = run_once(benchmark, lambda: stats_experiment(is_sort, nprocs=NPROCS))
    lrc, vc_d, vc_sd = results["LRC_d"].stats, results["VC_d"].stats, results["VC_sd"].stats

    table = format_stats_table(
        f"Table 1: Statistics of IS on {NPROCS} processors",
        results,
        paper=paper_data.TABLE1_IS_STATS,
    )
    attach(
        benchmark,
        table,
        {
            "lrc_time": lrc.time,
            "vc_d_time": vc_d.time,
            "vc_sd_time": vc_sd.time,
        },
    )

    # all runs verified against the sequential reference
    assert all(r.verified for r in results.values())
    # LRC_d's traditional IS uses no locks at all (paper: Acquires = 0)
    assert lrc.acquires == 0
    # VC_d: more messages and data than LRC_d ...
    assert vc_d.net.num_msg > lrc.net.num_msg
    assert vc_d.net.data_bytes > lrc.net.data_bytes
    # ... but faster (the paper's headline observation)
    assert vc_d.time < lrc.time
    # barrier cost: consistency-maintaining vs synchronisation-only
    assert lrc.barrier_time_avg > 5 * vc_d.barrier_time_avg
    # retransmissions concentrate on the centralised LRC pattern
    assert lrc.net.rexmit > vc_d.net.rexmit
    # VC_sd: optimal implementation
    assert vc_sd.diff_requests == 0
    assert vc_d.diff_requests > 0
    assert vc_sd.net.num_msg < vc_d.net.num_msg
    assert vc_sd.time <= vc_d.time
