"""Table 8 — Statistics of NN on 16 processors.

Paper findings: for NN, *VOPP itself* shows no advantage under the diff-based
implementation — VC_d sends more messages/data than LRC_d because of the
extra view primitives and is slower — but the performance potential VOPP
offers the implementation is larger: VC_sd (diff integration + piggybacking)
is clearly fastest, with zero diff requests and a much smaller acquire time
than VC_d.
"""

from repro.apps import nn
from repro.bench import paper_data, stats_experiment, format_stats_table
from benchmarks.conftest import attach, run_once

NPROCS = 16


def test_table8_nn_stats(benchmark):
    results = run_once(benchmark, lambda: stats_experiment(nn, nprocs=NPROCS))
    lrc, vc_d, vc_sd = results["LRC_d"].stats, results["VC_d"].stats, results["VC_sd"].stats

    table = format_stats_table(
        f"Table 8: Statistics of NN on {NPROCS} processors",
        results,
        paper=paper_data.TABLE8_NN_STATS,
    )
    attach(benchmark, table, {"lrc_time": lrc.time, "vc_d_time": vc_d.time, "vc_sd_time": vc_sd.time})

    assert all(r.verified for r in results.values())
    # the paper's honest negative result, by its mechanism: the extra view
    # primitives make VC_d send MORE messages and data than LRC_d, so plain
    # VOPP shows no decisive advantage here (the exact time crossover is
    # calibration-sensitive; in the paper VC_d was somewhat slower, in our
    # scaled calibration somewhat faster — never the clear win VC_sd gives)
    assert vc_d.net.num_msg > lrc.net.num_msg
    assert vc_d.net.data_bytes > lrc.net.data_bytes
    assert vc_d.time > 0.5 * lrc.time  # no decisive VC_d advantage
    # but VC_sd is clearly fastest
    assert vc_sd.time < lrc.time
    assert vc_sd.time < vc_d.time
    # diff integration removes all diff requests and most messages
    assert vc_sd.diff_requests == 0
    assert vc_sd.net.num_msg < vc_d.net.num_msg
    assert vc_sd.net.data_bytes < vc_d.net.data_bytes
    # acquire time: piggybacked grants beat invalidate-and-fault
    assert vc_sd.acquire_time_avg < vc_d.acquire_time_avg
