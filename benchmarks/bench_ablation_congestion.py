"""Extra ablation — receive-buffer size vs retransmissions.

The paper attributes LRC_d's extra retransmissions to centralised traffic
bursts.  Sweeping the receiver buffer size shows the mechanism directly:
small buffers punish LRC_d's convergent diff-reply bursts with drops and
1-second retransmission waits, while VC_sd's point-to-point view traffic is
almost immune.
"""

from repro.apps import is_sort
from repro.apps.common import run_app
from repro.net.config import NetConfig
from benchmarks.conftest import attach, run_once

NPROCS = 16
BUFFERS = (32 * 1024, 128 * 1024, 512 * 1024)


def _netcfg(buf: int) -> NetConfig:
    return NetConfig(recv_buffer_bytes=buf, red_threshold_bytes=buf * 5 // 8)


def test_ablation_congestion(benchmark):
    def experiment():
        rows = {}
        for buf in BUFFERS:
            lrc = run_app(is_sort, "lrc_d", NPROCS, netcfg=_netcfg(buf))
            sd = run_app(is_sort, "vc_sd", NPROCS, netcfg=_netcfg(buf))
            rows[buf] = (lrc.stats, sd.stats)
        return rows

    rows = run_once(benchmark, experiment)
    lines = ["Ablation: receive buffer vs rexmit (IS, 16p)"]
    lines.append(f"  {'buffer':>10}{'LRC rexmit':>12}{'LRC time':>10}{'VC_sd rexmit':>14}{'VC_sd time':>12}")
    for buf, (lrc, sd) in rows.items():
        lines.append(
            f"  {buf//1024:>8}KB{lrc.net.rexmit:>12,}{lrc.time:>10.2f}"
            f"{sd.net.rexmit:>14,}{sd.time:>12.2f}"
        )
    attach(benchmark, "\n".join(lines), {f"lrc_rexmit@{b}": rows[b][0].net.rexmit for b in BUFFERS})

    small, large = rows[BUFFERS[0]], rows[BUFFERS[-1]]
    # LRC's losses are congestion losses: shrinking the buffer multiplies
    # them, growing it towards the burst size removes them
    assert small[0].net.rexmit > large[0].net.rexmit
    # VC_sd's distributed traffic stays (nearly) loss-free throughout
    for buf, (lrc, sd) in rows.items():
        assert sd.net.rexmit <= lrc.net.rexmit
    # and the loss translates into time
    assert small[0].time > large[0].time
