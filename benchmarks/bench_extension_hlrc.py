"""Extension — homeless vs home-based LRC vs VOPP.

Beyond the paper's three systems: HLRC_d (home-based LRC, the protocol the
authors' companion work compares against) on the same workloads.  Expected
shape from the literature:

* HLRC needs **no diff requests** (faults are one full-page fetch from the
  home) where homeless LRC pays one request per writer;
* HLRC pushes diffs **eagerly**, so it can move more data than homeless LRC
  when writes are never consumed remotely, but far less protocol chatter on
  migratory/multi-writer pages;
* VOPP on VC_sd still beats both: the view boundary tells the DSM exactly
  what to update, which neither LRC variant can know.
"""

from repro.apps import gauss, is_sort
from repro.bench import format_stats_table, stats_experiment
from repro.bench.runner import Entry
from benchmarks.conftest import attach, run_once

NPROCS = 16

ENTRIES = (
    Entry("LRC_d", "lrc_d"),
    Entry("HLRC_d", "hlrc_d"),
    Entry("VC_sd", "vc_sd"),
)


def test_extension_hlrc_is(benchmark):
    def experiment():
        return {
            "is": stats_experiment(is_sort, nprocs=NPROCS, entries=ENTRIES),
            "gauss": stats_experiment(gauss, nprocs=NPROCS, entries=ENTRIES),
        }

    results = run_once(benchmark, experiment)
    tables = []
    for app, res in results.items():
        tables.append(
            format_stats_table(
                f"Extension: homeless vs home-based LRC vs VOPP — {app}, {NPROCS}p",
                res,
            )
        )
    attach(benchmark, "\n\n".join(tables), {
        f"{app}_{label}": res[label].stats.time
        for app, res in results.items()
        for label in res
    })

    for app, res in results.items():
        lrc, hlrc, sd = res["LRC_d"].stats, res["HLRC_d"].stats, res["VC_sd"].stats
        assert all(r.verified for r in res.values())
        # HLRC's defining property: zero diff requests
        assert hlrc.diff_requests == 0
        assert lrc.diff_requests > 0
        # VOPP still wins end-to-end on both LRC variants
        assert sd.time < lrc.time, app
        assert sd.time < hlrc.time, app
    # on Gauss (heavy false sharing) home-based beats homeless LRC: faults
    # cost one page fetch instead of per-writer diff chains
    assert results["gauss"]["HLRC_d"].stats.time < results["gauss"]["LRC_d"].stats.time
