"""Table 6 — Statistics of SOR on 16 processors.

Paper findings: dedicated border views (§3.3) mean only the border rows cross
the network, so LRC_d moves several times VC_d's data; LRC_d's
consistency-maintaining barrier is an order of magnitude slower than VC's
synchronisation-only barrier (paper: 139,100 µs vs 3,738 µs).
"""

from repro.apps import sor
from repro.bench import paper_data, stats_experiment, format_stats_table
from benchmarks.conftest import attach, run_once

NPROCS = 16


def test_table6_sor_stats(benchmark):
    results = run_once(benchmark, lambda: stats_experiment(sor, nprocs=NPROCS))
    lrc, vc_d, vc_sd = results["LRC_d"].stats, results["VC_d"].stats, results["VC_sd"].stats

    table = format_stats_table(
        f"Table 6: Statistics of SOR on {NPROCS} processors",
        results,
        paper=paper_data.TABLE6_SOR_STATS,
    )
    attach(benchmark, table, {"lrc_time": lrc.time, "vc_sd_time": vc_sd.time})

    assert all(r.verified for r in results.values())
    # border views cut the transferred data (paper: 14.71 MB -> 2.99 MB)
    assert vc_d.net.data_bytes < lrc.net.data_bytes / 1.5
    # VC barriers only synchronise (paper: 139,100 us vs 3,738 us)
    assert vc_d.barrier_time_avg < lrc.barrier_time_avg
    # VOPP is much faster end-to-end
    assert vc_d.time < lrc.time / 2
    assert vc_sd.time < lrc.time / 2
    assert vc_sd.diff_requests == 0
