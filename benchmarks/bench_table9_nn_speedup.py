"""Table 9 — Speedup of NN on LRC_d, VC_sd and MPI (2..32 processors).

Paper findings: the VOPP program on VC_sd is comparable with the MPI version
up to 16 processors; beyond that MPI wins but VC_sd's speedup keeps growing;
LRC_d trails everywhere.
"""

from repro.apps import nn
from repro.bench import format_speedup_table, speedup_experiment
from repro.bench.runner import Entry, PAPER_PROC_COUNTS
from benchmarks.conftest import attach, run_once

ENTRIES = (
    Entry("LRC_d", "lrc_d"),
    Entry("VC_sd", "vc_sd"),
    Entry("MPI", "mpi"),
)


def test_table9_nn_speedup(benchmark):
    speedups = run_once(
        benchmark, lambda: speedup_experiment(nn, ENTRIES, PAPER_PROC_COUNTS)
    )
    table = format_speedup_table(
        "Table 9: Speedup of NN on LRC_d, VC_sd and MPI", speedups
    )
    attach(benchmark, table, {f"{k}@{p}": v for k, row in speedups.items() for p, v in row.items()})

    lrc, sd, mpi = speedups["LRC_d"], speedups["VC_sd"], speedups["MPI"]
    # near-ideal parity is allowed at 2 processors; VC_sd must win from 4 on
    assert sd[2] > 0.9 * lrc[2]
    for p in PAPER_PROC_COUNTS[1:]:
        assert sd[p] > lrc[p], f"VC_sd must beat LRC_d at {p}p"
    # comparable with MPI up to 16 processors (within a factor ~2)
    for p in (2, 4, 8, 16):
        assert sd[p] > mpi[p] / 2, f"VC_sd must stay comparable to MPI at {p}p"
    # MPI is at least as good as VC_sd at scale
    assert mpi[32] >= sd[32] * 0.95
    # VC_sd keeps growing from 16 to 32 processors (paper: "still keeps
    # growing, though it is not as good as the MPI program")
    assert sd[32] > sd[16]
