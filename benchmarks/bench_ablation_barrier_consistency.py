"""Ablation 1 (DESIGN.md §5) — where consistency maintenance happens.

Compares, on the *same* IS computation at the same barrier count, the
consistency-maintaining centralised barrier (LRC_d) against the
synchronisation-only barrier plus distributed view maintenance (VC_d): the
per-barrier cost gap and its growth with the processor count is the paper's
central claim (§3.3: "Maintaining consistency in barriers is a centralized
way ... and becomes time-consuming when the number of processors increases").
"""

from repro.apps import is_sort
from repro.apps.common import run_app
from benchmarks.conftest import attach, run_once

PROCS = (8, 16, 32)


def test_ablation_barrier_consistency(benchmark):
    def experiment():
        rows = {}
        for p in PROCS:
            lrc = run_app(is_sort, "lrc_d", p)
            vc = run_app(is_sort, "vc_d", p)
            rows[p] = (lrc.stats.barrier_time_avg, vc.stats.barrier_time_avg)
        return rows

    rows = run_once(benchmark, experiment)
    lines = ["Ablation: barrier consistency placement (IS)"]
    lines.append(f"  {'procs':>6}{'LRC barrier (us)':>20}{'VC barrier (us)':>20}{'ratio':>8}")
    for p, (lrc_bt, vc_bt) in rows.items():
        lines.append(
            f"  {p:>6}{lrc_bt*1e6:>20,.0f}{vc_bt*1e6:>20,.0f}{lrc_bt/vc_bt:>8.1f}"
        )
    attach(benchmark, "\n".join(lines), {f"ratio@{p}": r[0] / r[1] for p, r in rows.items()})

    # consistency-maintaining barriers are always costlier ...
    for p, (lrc_bt, vc_bt) in rows.items():
        assert lrc_bt > vc_bt, f"LRC barrier must cost more at {p}p"
    # ... and the centralisation penalty grows with the processor count
    assert rows[32][0] / rows[32][1] > rows[8][0] / rows[8][1]
