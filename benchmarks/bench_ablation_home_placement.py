"""Extension ablation — HLRC home placement (first-touch vs round-robin).

Home assignment is the classic knob of home-based protocols.  Two honest,
opposite findings on our workloads:

* **Gauss**: rank 0 initialises the whole matrix, so first-touch makes node 0
  home of everything — every processor's per-step diffs converge there.
  Round-robin spreads the push/fetch load and wins.
* **IS**: each processor first-touches its own partial-histogram pages, so
  first-touch already co-locates homes with the writers (pushes are free);
  round-robin *moves homes away* from the writers and loses.

Placement must follow the write pattern — which is exactly the information
VOPP's views hand to the system for free.
"""

from repro.apps import gauss, is_sort
from benchmarks.conftest import attach, run_once

NPROCS = 16


def _run(app, policy: str):
    from repro.core.program import make_system

    config = app.default_config()
    system = make_system(NPROCS, "hlrc_d")
    for proto in system.dsm.protocols:
        proto.home_policy = policy
    body = app.build(system, config)
    system.run_program(body)
    out = app.extract(system, config)
    assert app.outputs_match(out, app.sequential(config))
    return system.stats


def test_ablation_home_placement(benchmark):
    def experiment():
        return {
            ("gauss", "first_touch"): _run(gauss, "first_touch"),
            ("gauss", "round_robin"): _run(gauss, "round_robin"),
            ("is", "first_touch"): _run(is_sort, "first_touch"),
            ("is", "round_robin"): _run(is_sort, "round_robin"),
        }

    stats = run_once(benchmark, experiment)
    lines = [f"Ablation: HLRC home placement, {NPROCS}p"]
    lines.append(f"  {'app':<8}{'policy':<14}{'time s':>8}{'msgs':>10}{'data MB':>10}{'rexmit':>8}")
    for (app, policy), s in stats.items():
        lines.append(
            f"  {app:<8}{policy:<14}{s.time:>8.2f}{s.net.num_msg:>10,}"
            f"{s.net.data_bytes/1e6:>10.2f}{s.net.rexmit:>8}"
        )
    attach(benchmark, "\n".join(lines), {
        f"{app}_{policy}": s.time for (app, policy), s in stats.items()
    })

    # Gauss: master-initialised data makes first-touch a node-0 hotspot;
    # spreading the homes wins
    assert stats[("gauss", "round_robin")].time < stats[("gauss", "first_touch")].time
    # IS: writers already own their pages; moving homes away cannot help
    assert stats[("is", "first_touch")].time <= stats[("is", "round_robin")].time * 1.1
