"""Table 4 — Statistics of Gauss on 16 processors.

Paper findings: the VOPP version's local buffers (§3.1) remove the false
sharing of the packed shared matrix, so VC_d needs far fewer diff requests
than LRC_d, and the data volume / message count collapse accordingly.
"""

from repro.apps import gauss
from repro.bench import paper_data, stats_experiment, format_stats_table
from benchmarks.conftest import attach, run_once

NPROCS = 16


def test_table4_gauss_stats(benchmark):
    results = run_once(benchmark, lambda: stats_experiment(gauss, nprocs=NPROCS))
    lrc, vc_d, vc_sd = results["LRC_d"].stats, results["VC_d"].stats, results["VC_sd"].stats

    table = format_stats_table(
        f"Table 4: Statistics of Gauss on {NPROCS} processors",
        results,
        paper=paper_data.TABLE4_GAUSS_STATS,
    )
    attach(benchmark, table, {"lrc_time": lrc.time, "vc_sd_time": vc_sd.time})

    assert all(r.verified for r in results.values())
    # false sharing: LRC_d issues many times VC_d's diff requests
    assert lrc.diff_requests > 5 * vc_d.diff_requests
    # work for consistency maintenance greatly reduced (data and messages)
    assert vc_d.net.data_bytes < lrc.net.data_bytes / 4
    assert vc_d.net.num_msg < lrc.net.num_msg
    # both VC implementations beat LRC_d outright
    assert vc_d.time < lrc.time
    assert vc_sd.time < lrc.time
    # VC_sd needs no diff requests at all
    assert vc_sd.diff_requests == 0
