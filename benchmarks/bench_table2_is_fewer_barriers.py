"""Table 2 — Statistics of IS with fewer barriers on 16 processors.

The §3.2 optimisation: in VOPP the in-loop barrier only provided access
exclusion, which views already guarantee, so it moves outside the loop.
Paper finding: the fewer-barrier version is significantly faster; acquires
stay the same; VC_sd still needs zero diff requests.
"""

from repro.apps import is_sort
from repro.bench import paper_data, stats_experiment, format_stats_table
from repro.bench.runner import Entry
from benchmarks.conftest import attach, run_once

NPROCS = 16

ENTRIES = (
    Entry("VC_d", "vc_d", variant="lb"),
    Entry("VC_sd", "vc_sd", variant="lb"),
)


def test_table2_is_fewer_barriers(benchmark):
    def experiment():
        lb = stats_experiment(is_sort, nprocs=NPROCS, entries=ENTRIES)
        full = stats_experiment(
            is_sort,
            nprocs=NPROCS,
            entries=(Entry("VC_sd (40 barriers)", "vc_sd"),),
        )
        return lb, full

    lb, full = run_once(benchmark, experiment)
    table = format_stats_table(
        f"Table 2: Statistics of IS with fewer barriers on {NPROCS} processors",
        lb,
        paper=paper_data.TABLE2_IS_LB_STATS,
    )
    attach(benchmark, table, {"vc_sd_lb_time": lb["VC_sd"].stats.time})

    assert all(r.verified for r in lb.values())
    # the barrier count collapsed (paper: 40 -> a handful)
    assert lb["VC_sd"].stats.barriers < full["VC_sd (40 barriers)"].stats.barriers / 5
    # fewer barriers is faster (the paper: "significantly faster")
    assert lb["VC_sd"].stats.time < full["VC_sd (40 barriers)"].stats.time
    # same acquires as the 40-barrier version (views unchanged)
    assert lb["VC_sd"].stats.acquires == full["VC_sd (40 barriers)"].stats.acquires
    # VC_sd still: no diff requests, fewer msgs than VC_d
    assert lb["VC_sd"].stats.diff_requests == 0
    assert lb["VC_sd"].stats.net.num_msg < lb["VC_d"].stats.net.num_msg
