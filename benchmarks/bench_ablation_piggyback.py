"""Ablation 3 (DESIGN.md §5) — diff piggybacking in VC_sd.

With piggybacking disabled, view grants carry only write notices; the
acquirer invalidates and pulls diffs from the writers — re-introducing
exactly the request/reply round trips VC_sd removes (the grants degrade to
the VC_d invalidate protocol).
"""

from repro.apps import is_sort
from repro.bench.runner import Entry
from benchmarks.conftest import attach, run_once

NPROCS = 16


def _run(piggyback: bool):
    from repro.core.program import make_system

    system = make_system(NPROCS, "vc_sd")
    for proto in system.dsm.protocols:
        proto.piggyback_enabled = piggyback
    config = is_sort.default_config()
    body = is_sort.build(system, config)
    system.run_program(body)
    out = is_sort.extract(system, config)
    assert is_sort.outputs_match(out, is_sort.sequential(config))
    return system.stats


def test_ablation_piggyback(benchmark):
    def experiment():
        return _run(True), _run(False)

    with_pb, without_pb = run_once(benchmark, experiment)
    table = (
        "Ablation: diff piggybacking (IS, VC_sd, 16p)\n"
        f"  piggyback on : diff requests {with_pb.diff_requests:,}, "
        f"msgs {with_pb.net.num_msg:,}, time {with_pb.time:.3f} s\n"
        f"  piggyback off: diff requests {without_pb.diff_requests:,}, "
        f"msgs {without_pb.net.num_msg:,}, time {without_pb.time:.3f} s"
    )
    attach(benchmark, table, {"diffreq_off": without_pb.diff_requests})

    # piggybacking is what makes "Diff Requests = 0"
    assert with_pb.diff_requests == 0
    assert without_pb.diff_requests > 0
    # request/reply round trips inflate the message count and the runtime
    assert without_pb.net.num_msg > with_pb.net.num_msg
    assert without_pb.time > with_pb.time
