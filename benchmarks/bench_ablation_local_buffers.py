"""Ablation 5 (DESIGN.md §5) — local buffers for infrequently-shared data.

Gauss without the §3.1 local buffers updates its rows directly inside the
shared block view; every elimination step's release then ships the step's row
modifications through the view manager.

With the default manager placement the per-processor block views are managed
by their own node (release shipping is local and free), so this bench also
shifts every view manager one node over (``manager_offset=1``) to expose the
placement dependence: with remote managers the in-place variant pays the full
per-step shipping cost that local buffers avoid.
"""

from repro.apps import gauss
from repro.apps.common import run_app
from benchmarks.conftest import attach, run_once

NPROCS = 16


def _run(variant: str, manager_offset: int):
    from repro.core.program import VoppSystem

    config = gauss.default_config()
    system = VoppSystem(NPROCS, protocol="vc_sd", manager_offset=manager_offset)
    body = gauss.build(system, config, variant)
    system.run_program(body)
    out = gauss.extract(system, config)
    assert gauss.outputs_match(out, gauss.sequential(config))
    return system.stats


def test_ablation_local_buffers(benchmark):
    def experiment():
        return {
            ("local buffers", 0): _run("default", 0),
            ("shared in place", 0): _run("no_local_buffers", 0),
            ("local buffers", 1): _run("default", 1),
            ("shared in place", 1): _run("no_local_buffers", 1),
        }

    stats = run_once(benchmark, experiment)
    lines = [f"Ablation: Gauss local buffers on VC_sd, {NPROCS}p (paper §3.1)"]
    lines.append(f"  {'variant':<18}{'managers':>10}{'data MB':>10}{'msgs':>10}{'time s':>10}")
    for (variant, off), s in stats.items():
        where = "owner" if off == 0 else "remote"
        lines.append(
            f"  {variant:<18}{where:>10}{s.net.data_bytes/1e6:>10.3f}"
            f"{s.net.num_msg:>10,}{s.time:>10.3f}"
        )
    attach(benchmark, "\n".join(lines), {
        "data_buf_remote": stats[("local buffers", 1)].net.data_bytes,
        "data_noloc_remote": stats[("shared in place", 1)].net.data_bytes,
    })

    # with remote managers, the in-place variant ships every step's diffs:
    # local buffers cut the data volume by a large factor ...
    assert (
        stats[("local buffers", 1)].net.data_bytes
        < stats[("shared in place", 1)].net.data_bytes / 3
    )
    # ... and the time
    assert stats[("local buffers", 1)].time < stats[("shared in place", 1)].time
    # with owner-local managers the in-place release shipping is free — the
    # placement itself is a design choice the bench documents
    ratio_local = (
        stats[("shared in place", 0)].net.data_bytes
        / stats[("local buffers", 0)].net.data_bytes
    )
    assert ratio_local < 2.0
