"""Ablation 4 (DESIGN.md §5) — view granularity (the §3.6 rule of thumb).

"The more views are acquired, the more messages there are in the system; and
the larger a view is, the more data traffic is caused in the system when the
view is acquired."  Sweeping IS's bucket-view count shows both arms: one big
view minimises messages but serialises all processors and maximises per-
acquire data; many small views raise the message count but run concurrently.
"""

from repro.apps import is_sort
from repro.apps.common import run_app
from benchmarks.conftest import attach, run_once

NPROCS = 16
SPLITS = (1, 4, 16, 64)


def test_ablation_view_granularity(benchmark):
    def experiment():
        results = {}
        for v in SPLITS:
            config = is_sort.IsConfig(bucket_views=v)
            results[v] = run_app(is_sort, "vc_sd", NPROCS, config)
        return results

    results = run_once(benchmark, experiment)
    lines = [f"Ablation: IS bucket views on VC_sd, {NPROCS}p (rule of thumb §3.6)"]
    for v, r in results.items():
        lines.append(
            f"  {v:>3} views: acquires {r.stats.acquires:>6,}, "
            f"msgs {r.stats.net.num_msg:>7,}, data {r.stats.net.data_bytes/1e6:7.3f} MB, "
            f"time {r.stats.time:7.3f} s"
        )
    attach(benchmark, "\n".join(lines), {f"time@{v}": r.stats.time for v, r in results.items()})

    assert all(r.verified for r in results.values())
    # more views -> more acquire messages (first arm of the rule)
    acquires = [results[v].stats.acquires for v in SPLITS]
    assert acquires == sorted(acquires)
    # a single big view serialises the accumulate phase: some split must
    # beat it outright
    t_single = results[1].stats.time
    assert min(r.stats.time for r in results.values()) < t_single
