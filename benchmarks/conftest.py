"""Shared helpers for the table benchmarks.

Every benchmark runs the simulation once (``rounds=1``) — the interesting
output is the *simulated* statistics table printed to stdout and attached to
``benchmark.extra_info``, not the host wall-clock time.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    box = {}

    def target():
        box["result"] = fn()

    benchmark.pedantic(target, rounds=1, iterations=1)
    return box["result"]


def attach(benchmark, table: str, shapes: dict):
    benchmark.extra_info["table"] = table
    for key, value in shapes.items():
        benchmark.extra_info[key] = value
    print()
    print(table)
