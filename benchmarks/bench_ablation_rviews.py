"""Ablation 6 (DESIGN.md §5) — acquire_Rview for read-only data.

NN with exclusive views for the per-epoch weight reads serialises all
processors at the start of every epoch.  The paper (§3.4): "Without it the
major part of the VOPP program would run sequentially."
"""

from repro.apps import nn
from repro.apps.common import run_app
from benchmarks.conftest import attach, run_once

NPROCS = 16


def test_ablation_rviews(benchmark):
    def experiment():
        with_rv = run_app(nn, "vc_sd", NPROCS)
        without_rv = run_app(nn, "vc_sd", NPROCS, variant="no_rview")
        return with_rv, without_rv

    with_rv, without_rv = run_once(benchmark, experiment)
    table = (
        f"Ablation: NN weight reads via Rview on VC_sd, {NPROCS}p (paper §3.4)\n"
        f"  acquire_Rview : time {with_rv.stats.time:.3f} s, "
        f"acquire time {with_rv.stats.acquire_time_avg*1e6:,.0f} us\n"
        f"  acquire_view  : time {without_rv.stats.time:.3f} s, "
        f"acquire time {without_rv.stats.acquire_time_avg*1e6:,.0f} us"
    )
    attach(benchmark, table, {
        "time_rview": with_rv.stats.time,
        "time_excl": without_rv.stats.time,
    })

    assert with_rv.verified and without_rv.verified
    # exclusive weight reads serialise the epoch start: clearly slower
    assert with_rv.stats.time < without_rv.stats.time
    # the wait shows up directly in the mean acquire time
    assert with_rv.stats.acquire_time_avg < without_rv.stats.acquire_time_avg
