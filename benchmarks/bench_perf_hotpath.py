"""Hot-path wall-clock benchmark: the Table-1 IS workload timed on the host.

Unlike the table benches (which report *simulated* statistics), this target
measures how fast the simulator itself runs: wall seconds, executed events
and events/sec for IS on 16 processors under LRC_d / VC_d / VC_sd with the
default seed.  ``python -m repro.bench.perf`` produces the same report as
``BENCH_hotpath.json``; the repo-root copy is the recorded baseline to
compare against.
"""

import json

from repro.bench.perf import run_hotpath_benchmark
from benchmarks.conftest import attach, run_once

NPROCS = 16


def test_perf_hotpath(benchmark):
    report = run_once(benchmark, lambda: run_hotpath_benchmark(nprocs=NPROCS))

    # the report is the artefact — it must round-trip through JSON
    json.loads(json.dumps(report))

    lines = [f"Hot-path perf: IS on {NPROCS} processors (seed {report['seed']})"]
    for label, row in report["protocols"].items():
        lines.append(
            f"  {label:<6} {row['wall_seconds']:>8.3f} s wall   "
            f"{row['events']:>9,} events   {row['events_per_sec']:>10,} ev/s"
        )
    lines.append(
        f"  total  {report['wall_seconds']:>8.3f} s wall   "
        f"{report['events']:>9,} events   {report['events_per_sec']:>10,} ev/s   "
        f"peak RSS {report['peak_rss_kb']:,} KiB"
    )
    attach(
        benchmark,
        "\n".join(lines),
        {
            "wall_seconds": report["wall_seconds"],
            "events": report["events"],
            "events_per_sec": report["events_per_sec"],
            "peak_rss_kb": report["peak_rss_kb"],
        },
    )

    assert report["events"] > 0
    assert report["events_per_sec"] > 0
    assert all(row["verified"] for row in report["protocols"].values())
