"""Table 5 — Speedup of Gauss on LRC_d and VC_sd (2..32 processors).

Paper finding: "The speedups of VC_sd is really impressive compared with
those of LRC_d" — LRC_d barely scales while VC_sd keeps climbing.
"""

from repro.apps import gauss
from repro.bench import format_speedup_table, speedup_experiment
from repro.bench.runner import Entry, PAPER_PROC_COUNTS
from benchmarks.conftest import attach, run_once

ENTRIES = (
    Entry("LRC_d", "lrc_d"),
    Entry("VC_sd", "vc_sd"),
)


def test_table5_gauss_speedup(benchmark):
    speedups = run_once(
        benchmark, lambda: speedup_experiment(gauss, ENTRIES, PAPER_PROC_COUNTS)
    )
    table = format_speedup_table("Table 5: Speedup of Gauss on LRC_d and VC_sd", speedups)
    attach(benchmark, table, {f"{k}@{p}": v for k, row in speedups.items() for p, v in row.items()})

    lrc, sd = speedups["LRC_d"], speedups["VC_sd"]
    for p in PAPER_PROC_COUNTS:
        assert sd[p] > lrc[p], f"VC_sd must beat LRC_d at {p}p"
    # VC_sd at 16p is several times LRC_d's speedup
    assert sd[16] > 3 * lrc[16]
    # VC_sd still improves beyond 8 processors
    assert sd[16] > sd[8]
