"""Table 3 — Speedup of IS on LRC_d and VC_sd (2..32 processors).

Paper findings: VC_sd's speedups are significantly better than LRC_d's at
every processor count; moving the barrier out of the loop (VC_sd lb) improves
them further, especially at large processor counts; LRC_d degrades as the
cluster grows.
"""

from repro.apps import is_sort
from repro.bench import format_speedup_table, speedup_experiment
from repro.bench.runner import Entry, PAPER_PROC_COUNTS
from benchmarks.conftest import attach, run_once

ENTRIES = (
    Entry("LRC_d", "lrc_d"),
    Entry("VC_sd", "vc_sd"),
    Entry("VC_sd lb", "vc_sd", variant="lb"),
)


def test_table3_is_speedup(benchmark):
    speedups = run_once(
        benchmark, lambda: speedup_experiment(is_sort, ENTRIES, PAPER_PROC_COUNTS)
    )
    table = format_speedup_table("Table 3: Speedup of IS on LRC_d and VC_sd", speedups)
    attach(benchmark, table, {f"{k}@{p}": v for k, row in speedups.items() for p, v in row.items()})

    lrc, sd, sd_lb = speedups["LRC_d"], speedups["VC_sd"], speedups["VC_sd lb"]
    # VC_sd beats LRC_d at every processor count
    for p in PAPER_PROC_COUNTS:
        assert sd[p] > lrc[p], f"VC_sd must beat LRC_d at {p}p"
    # the fewer-barriers version wins at scale (paper: "especially when the
    # number of processors becomes large")
    assert sd_lb[32] >= sd[32]
    # LRC_d collapses at scale; VC_sd keeps improving from 16 to 32
    assert lrc[32] < lrc[16]
    assert sd[32] > sd[16]
