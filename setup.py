"""Legacy setuptools shim.

Lets ``pip install -e .`` work on machines without the ``wheel`` package
(modern PEP 660 editable installs need it; the legacy path does not).
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
